"""Tests for the multi-probe LSH and LSH-forest blockers."""

import pytest

from repro.core import LSHBlocker, LSHForestBlocker, MultiProbeLSHBlocker
from repro.errors import ConfigurationError
from repro.evaluation import evaluate_blocks
from repro.records import Dataset, Record


def make_dataset():
    rows = [
        ("a", "cascade correlation learning", "e1"),
        ("b", "cascade correlation learning", "e1"),
        ("c", "cascade corelation learning", "e1"),
        ("d", "genetic algorithms overview", "e2"),
        ("e", "genetic algorithm overview", "e2"),
        ("f", "markov decision processes", "e3"),
        ("g", "hidden markov models", "e4"),
        ("h", "support vector machines", "e5"),
    ]
    return Dataset(
        [Record(r, {"title": t}, entity_id=e) for r, t, e in rows]
    )


class TestMultiProbeLSH:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            MultiProbeLSHBlocker(("title",), q=2, k=0, l=3)
        with pytest.raises(ConfigurationError):
            MultiProbeLSHBlocker(("title",), q=2, k=3, l=3, num_probes=5)

    def test_probing_extends_plain_lsh(self):
        """With the same (k, l), probing can only add candidate pairs."""
        ds = make_dataset()
        plain = LSHBlocker(("title",), q=2, k=4, l=2, seed=9).block(ds)
        probed = MultiProbeLSHBlocker(("title",), q=2, k=4, l=2, seed=9).block(ds)
        assert plain.distinct_pairs <= probed.distinct_pairs

    def test_zero_probes_equals_plain_lsh(self):
        ds = make_dataset()
        plain = LSHBlocker(("title",), q=2, k=3, l=4, seed=5).block(ds)
        zero = MultiProbeLSHBlocker(
            ("title",), q=2, k=3, l=4, seed=5, num_probes=0
        ).block(ds)
        assert zero.distinct_pairs == plain.distinct_pairs

    def test_fewer_tables_recall_boost(self):
        """The variant's purpose: recover recall with fewer tables."""
        ds = make_dataset()
        plain = evaluate_blocks(
            LSHBlocker(("title",), q=2, k=3, l=2, seed=1).block(ds), ds
        )
        probed = evaluate_blocks(
            MultiProbeLSHBlocker(("title",), q=2, k=3, l=2, seed=1).block(ds),
            ds,
        )
        assert probed.pc >= plain.pc

    def test_deterministic(self):
        ds = make_dataset()
        r1 = MultiProbeLSHBlocker(("title",), q=2, k=3, l=3, seed=2).block(ds)
        r2 = MultiProbeLSHBlocker(("title",), q=2, k=3, l=3, seed=2).block(ds)
        assert r1.distinct_pairs == r2.distinct_pairs

    def test_describe(self):
        blocker = MultiProbeLSHBlocker(("title",), q=2, k=3, l=3, num_probes=2)
        assert "probes=2" in blocker.describe()


class TestLSHForest:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            LSHForestBlocker(("title",), q=2, k=3, l=3, max_block_size=1)

    def test_blocks_respect_size_cap_when_splittable(self):
        ds = Dataset(
            [
                Record(f"r{i}", {"title": f"record number {i}"})
                for i in range(40)
            ]
        )
        result = LSHForestBlocker(
            ("title",), q=2, k=6, l=2, max_block_size=8, seed=3
        ).block(ds)
        # Distinct titles hash apart; adaptive descent keeps buckets small.
        assert result.max_block_size <= 40
        sizes = [len(b) for b in result.blocks]
        assert all(s <= 8 or s == len(set(b)) for s, b in zip(sizes, result.blocks))

    def test_identical_records_stay_together(self):
        ds = Dataset(
            [
                Record("a", {"title": "same text"}, entity_id="e"),
                Record("b", {"title": "same text"}, entity_id="e"),
                Record("c", {"title": "other words"}, entity_id="f"),
            ]
        )
        result = LSHForestBlocker(
            ("title",), q=2, k=4, l=3, max_block_size=2, seed=1
        ).block(ds)
        assert ("a", "b") in result.distinct_pairs

    def test_forest_prunes_giant_buckets_vs_plain(self):
        """Adaptive depth splits the over-full buckets plain LSH keeps."""
        records = [
            Record(f"r{i}", {"title": "common prefix shared by all " + str(i)})
            for i in range(30)
        ]
        ds = Dataset(records)
        plain = LSHBlocker(("title",), q=2, k=2, l=2, seed=4).block(ds)
        forest = LSHForestBlocker(
            ("title",), q=2, k=8, l=2, max_block_size=5, seed=4
        ).block(ds)
        assert forest.max_block_size <= plain.max_block_size

    def test_deterministic(self):
        ds = make_dataset()
        r1 = LSHForestBlocker(("title",), q=2, k=4, l=2, seed=6).block(ds)
        r2 = LSHForestBlocker(("title",), q=2, k=4, l=2, seed=6).block(ds)
        assert r1.distinct_pairs == r2.distinct_pairs
