"""Process-sharded runtime determinism (DESIGN.md, "Process-sharded
streaming runtime").

The contract extends the PR 2 guarantee to processes: neither the
process count, nor the record-slab layout, nor the band-key shard
assignment may change a single byte of the output — ``processes=2``
blocks must equal serial blocks exactly, for every LSH blocker and at
the index level (gated and ungated).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    LSHBlocker,
    LSHForestBlocker,
    MultiProbeLSHBlocker,
    SALSHBlocker,
)
from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.errors import ConfigurationError
from repro.lsh.bands import split_bands_matrix
from repro.lsh.index import BandedLSHIndex
from repro.lsh.sharding import (
    fold_labels,
    record_slabs,
    semantic_signature_slabs,
    signature_slabs,
)
from repro.minhash import MinHasher, Shingler
from repro.semantic import SemhashEncoder, VoterSemanticFunction
from repro.semantic.hashing import WWaySemanticHashFamily
from repro.utils.parallel import map_processes, resolve_processes

VOTER_ATTRS = ("first_name", "last_name")


def _double(x):
    return 2 * x


class TestParallelPrimitives:
    def test_resolve_processes(self):
        assert resolve_processes(3) == 3
        assert resolve_processes(None) >= 1
        with pytest.raises(ConfigurationError):
            resolve_processes(0)

    def test_map_processes_order_and_equivalence(self):
        payloads = list(range(23))
        serial = map_processes(_double, payloads, processes=1)
        pooled = map_processes(_double, payloads, processes=2)
        assert serial == pooled == [2 * x for x in payloads]

    def test_map_processes_empty(self):
        assert map_processes(_double, [], processes=4) == []

    def test_record_slabs(self, fig1):
        records = list(fig1)
        slabs = record_slabs(records, 4)
        assert [r for slab in slabs for r in slab] == records
        # More slabs than records degrades to one record per slab.
        assert record_slabs(records, 100) == [[r] for r in records]
        with pytest.raises(ConfigurationError):
            record_slabs(records, 0)


class TestFoldLabels:
    def test_equal_labels_fold_equal(self):
        keys = np.array([b"aaaaaaaa", b"bbbbbbbb", b"aaaaaaaa"], dtype="S8")
        folded = fold_labels(keys)
        assert folded[0] == folded[2]
        assert folded[0] != folded[1]

    def test_int_labels(self):
        labels = np.array([-3, 7, -3, 0], dtype=np.int64)
        folded = fold_labels(labels)
        assert folded[0] == folded[2]
        assert len(set(folded.tolist())) == 3

    def test_bad_width_rejected(self):
        with pytest.raises(ConfigurationError):
            fold_labels(np.array([b"abc"], dtype="S3"))


class TestShardedSignatureSlabs:
    def test_concatenation_matches_one_shot(self, voter_small):
        shingler = Shingler(VOTER_ATTRS, q=2)
        hasher = MinHasher(12, seed=9)
        expected = hasher.signature_matrix(shingler.shingle_corpus(voter_small))
        parts = signature_slabs(shingler, hasher, voter_small, processes=2)
        assert sum(len(p[0]) for p in parts) == len(voter_small)
        assert np.array_equal(np.concatenate([p[1] for p in parts]), expected)

    def test_semantic_slabs_ship_interpretations(self, voter_small):
        shingler = Shingler(VOTER_ATTRS, q=2)
        hasher = MinHasher(6, seed=2)
        sf = VoterSemanticFunction()
        parts = semantic_signature_slabs(
            shingler, hasher, sf, voter_small, processes=2
        )
        zetas = {
            rid: zeta
            for record_ids, _, slab_zetas in parts
            for rid, zeta in zip(record_ids, slab_zetas)
        }
        reference = SemhashEncoder(sf, voter_small)
        rebuilt = SemhashEncoder.from_interpretations(sf, zetas)
        assert rebuilt.bits == reference.bits


class TestShardedIndexGrouping:
    def _signatures(self, dataset, k=3, l=4):
        shingler = Shingler(VOTER_ATTRS, q=2)
        hasher = MinHasher(k * l, seed=2)
        corpus = shingler.shingle_corpus(dataset)
        return corpus.record_ids, hasher.signature_matrix(corpus), k, l

    def test_ungated_blocks_identical(self, voter_small):
        record_ids, signatures, k, l = self._signatures(voter_small)
        keys = split_bands_matrix(signatures, k, l)
        serial = BandedLSHIndex(l)
        serial.add_many(record_ids, keys)
        sharded = BandedLSHIndex(l, processes=2)
        sharded.add_many(record_ids, keys)
        assert sharded.blocks() == serial.blocks()
        assert sharded.bucket_sizes() == serial.bucket_sizes()

    @pytest.mark.parametrize("w,mode", [("all", "or"), (2, "and"), (3, "or")])
    def test_gated_blocks_identical(self, voter_small, w, mode):
        record_ids, signatures, k, l = self._signatures(voter_small)
        keys = split_bands_matrix(signatures, k, l)
        encoder = SemhashEncoder(VoterSemanticFunction(), voter_small)
        semhash = encoder.signature_matrix(voter_small)
        gates = WWaySemanticHashFamily(
            num_bits=encoder.num_bits, w=w, mode=mode, num_tables=l, seed=1
        )
        entries = [gates.gate_entries(t, semhash) for t in range(l)]
        serial = BandedLSHIndex(l)
        serial.add_many(record_ids, keys, gate_entries=entries)
        sharded = BandedLSHIndex(l, processes=3)
        sharded.add_many(record_ids, keys, gate_entries=entries)
        assert sharded.blocks() == serial.blocks()

    def test_multi_slab_sharded_identical(self, voter_small):
        record_ids, signatures, k, l = self._signatures(voter_small)
        keys = split_bands_matrix(signatures, k, l)
        serial = BandedLSHIndex(l)
        serial.add_many(record_ids, keys)
        sharded = BandedLSHIndex(l, processes=2)
        for lo, hi in ((0, 123), (123, 124), (124, len(record_ids))):
            sharded.add_many(record_ids[lo:hi], keys[lo:hi])
        assert sharded.blocks() == serial.blocks()


class TestShardedBlockersDeterministic:
    def test_lsh_processes_identical(self, voter_small):
        serial = LSHBlocker(VOTER_ATTRS, q=2, k=4, l=6, seed=3).block(voter_small)
        sharded = LSHBlocker(
            VOTER_ATTRS, q=2, k=4, l=6, seed=3, processes=2
        ).block(voter_small)
        assert sharded.blocks == serial.blocks
        assert sharded.metadata["processes"] == 2

    def test_salsh_processes_identical(self, voter_small):
        make = lambda **kw: SALSHBlocker(
            VOTER_ATTRS, q=2, k=4, l=6, seed=3,
            semantic_function=VoterSemanticFunction(), w=2, mode="or", **kw,
        )
        serial = make().block(voter_small)
        sharded = make(processes=2).block(voter_small)
        assert sharded.blocks == serial.blocks
        assert sharded.metadata["engine"] == "sharded"
        assert sharded.metadata["num_semantic_bits"] == (
            serial.metadata["num_semantic_bits"]
        )

    def test_salsh_fig1_processes_identical(self, fig1, fig1_sf):
        make = lambda **kw: SALSHBlocker(
            ("title", "authors"), q=3, k=2, l=3, seed=1,
            semantic_function=fig1_sf, w="all", mode="or", **kw,
        )
        assert make(processes=2).block(fig1).blocks == make().block(fig1).blocks

    def test_mplsh_processes_identical(self, voter_small):
        make = lambda **kw: MultiProbeLSHBlocker(
            VOTER_ATTRS, q=2, k=3, l=4, seed=5, **kw
        )
        assert (
            make(processes=2).block(voter_small).blocks
            == make().block(voter_small).blocks
        )

    def test_forest_processes_identical(self, voter_small):
        make = lambda **kw: LSHForestBlocker(
            VOTER_ATTRS, q=2, k=4, l=3, seed=5, max_block_size=10, **kw
        )
        assert (
            make(processes=2).block(voter_small).blocks
            == make().block(voter_small).blocks
        )

    def test_empty_dataset_all_blockers(self):
        # The sharded path has no slabs to concatenate on an empty
        # corpus; it must degrade to the serial result, not crash.
        from repro.records import Dataset

        empty = Dataset([])
        for make in (
            lambda **kw: LSHBlocker(("a",), q=2, k=3, l=5, **kw),
            lambda **kw: MultiProbeLSHBlocker(("a",), q=2, k=3, l=5, **kw),
            lambda **kw: LSHForestBlocker(("a",), q=2, k=3, l=5, **kw),
        ):
            assert make(processes=2).block(empty).blocks == (
                make().block(empty).blocks
            )

    def test_workers_compose_with_processes(self, voter_small):
        serial = LSHBlocker(VOTER_ATTRS, q=2, k=4, l=6, seed=3).block(voter_small)
        combined = LSHBlocker(
            VOTER_ATTRS, q=2, k=4, l=6, seed=3, workers=2, processes=2
        ).block(voter_small)
        assert combined.blocks == serial.blocks

    def test_streamed_sharded_identical(self, voter_small):
        # processes= also applies to the streaming path's grouping.
        records = list(voter_small)
        slabs = [records[i : i + 111] for i in range(0, len(records), 111)]
        serial = LSHBlocker(VOTER_ATTRS, q=2, k=4, l=6, seed=3).block(voter_small)
        streamed = LSHBlocker(
            VOTER_ATTRS, q=2, k=4, l=6, seed=3, processes=2
        ).block_stream(slabs)
        assert streamed.blocks == serial.blocks

    def test_pipeline_processes_identical(self, voter_small):
        serial = run_pipeline(
            voter_small,
            PipelineConfig(attributes=VOTER_ATTRS, q=2),
            VoterSemanticFunction(),
        )
        sharded = run_pipeline(
            voter_small,
            PipelineConfig(attributes=VOTER_ATTRS, q=2, processes=2),
            VoterSemanticFunction(),
        )
        assert sharded.outcome.result.blocks == serial.outcome.result.blocks
