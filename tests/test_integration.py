"""End-to-end integration tests reproducing the paper's qualitative claims."""

import os

import pytest

from repro.baselines import StandardBlocker, SuffixArrayBlocker
from repro.core import LSHBlocker, SALSHBlocker
from repro.core.tuning import determine_kl, determine_sh
from repro.evaluation import evaluate_blocks, run_blocking
from repro.metablocking import run_metablocking
from repro.minhash import Shingler
from repro.semantic import (
    PatternSemanticFunction,
    VoterSemanticFunction,
    cora_patterns,
)
from repro.taxonomy.builders import bibliographic_tree


CORA_ATTRS = ("authors", "title")
VOTER_ATTRS = ("first_name", "last_name")


@pytest.fixture(scope="module")
def cora_sf():
    return PatternSemanticFunction(bibliographic_tree(), cora_patterns())


class TestCoraPipeline:
    def test_salsh_improves_pq_at_small_pc_cost(self, cora_small, cora_sf):
        """The paper's headline claim (§6.3.2, Fig. 9 a-b): SA-LSH
        trades a small PC decrease for a clear PQ increase."""
        lsh = run_blocking(
            LSHBlocker(CORA_ATTRS, q=3, k=3, l=19, seed=5), cora_small
        )
        salsh = run_blocking(
            SALSHBlocker(
                CORA_ATTRS, q=3, k=3, l=19, seed=5,
                semantic_function=cora_sf, w="all", mode="or",
            ),
            cora_small,
        )
        assert salsh.metrics.pq >= lsh.metrics.pq
        assert salsh.metrics.rr >= lsh.metrics.rr
        assert salsh.metrics.pc <= lsh.metrics.pc
        assert lsh.metrics.pc - salsh.metrics.pc < 0.15

    def test_salsh_beats_standard_blocking_fm(self, cora_small, cora_sf):
        """Fig. 11: (SA-)LSH has higher FM than exact-key blocking on
        the dirty bibliographic corpus."""
        tblo = run_blocking(StandardBlocker(CORA_ATTRS), cora_small)
        salsh = run_blocking(
            SALSHBlocker(
                CORA_ATTRS, q=3, k=3, l=19, seed=5,
                semantic_function=cora_sf, w="all", mode="or",
            ),
            cora_small,
        )
        assert salsh.metrics.fm > tblo.metrics.fm

    def test_parameter_tuning_on_training_sample(self, cora_small):
        """§5.3 end to end: learn sh from the true-match similarity
        distribution of a training sample and derive feasible (k, l)."""
        shingler = Shingler(CORA_ATTRS, q=3)
        train = list(cora_small.true_matches)[:200]
        sims = [
            shingler.jaccard(cora_small[a], cora_small[b]) for a, b in train
        ]
        sh = determine_sh(sims, epsilon=0.05)
        sl = max(sh / 2, 0.01)
        params = determine_kl(sh, sl, ph=0.4, pl=0.1)
        assert params.k >= 1 and params.l >= 1

    def test_and_mode_stricter_than_or(self, cora_small, cora_sf):
        """Fig. 7: AND gates remove more pairs than OR gates."""
        common = dict(q=3, k=3, l=19, seed=5, semantic_function=cora_sf)
        or_pairs = (
            SALSHBlocker(CORA_ATTRS, w=2, mode="or", **common)
            .block(cora_small)
            .distinct_pairs
        )
        and_pairs = (
            SALSHBlocker(CORA_ATTRS, w=2, mode="and", **common)
            .block(cora_small)
            .distinct_pairs
        )
        assert len(and_pairs) <= len(or_pairs)


class TestVoterPipeline:
    def test_salsh_improves_pq_on_clean_data(self, voter_small):
        """Fig. 9 (d)-(f): on NC Voter the PC values coincide while
        PQ improves (semantic features are uncertain but not noisy)."""
        sf = VoterSemanticFunction()
        lsh = run_blocking(
            LSHBlocker(VOTER_ATTRS, q=2, k=9, l=15, seed=2), voter_small
        )
        salsh = run_blocking(
            SALSHBlocker(
                VOTER_ATTRS, q=2, k=9, l=15, seed=2,
                semantic_function=sf, w="all", mode="or",
            ),
            voter_small,
        )
        assert salsh.metrics.pq >= lsh.metrics.pq
        assert lsh.metrics.pc - salsh.metrics.pc <= 0.05

    def test_semantic_bits_are_12(self, voter_small):
        """§6.2: 'a 12 bit semantic signature for each record'."""
        from repro.semantic import SemhashEncoder

        encoder = SemhashEncoder(VoterSemanticFunction(), voter_small)
        assert encoder.num_bits == 12


class TestMetaBlockingPipeline:
    def test_metablocking_on_suffix_blocks(self, voter_small):
        """Fig. 12 setting: prune a redundant block collection and gain
        PQ* without losing all recall."""
        source = SuffixArrayBlocker(
            VOTER_ATTRS, min_length=3, max_block_size=20
        ).block(voter_small)
        before = evaluate_blocks(source, voter_small)
        pruned = run_metablocking(source, "ARCS", "WEP")
        after = evaluate_blocks(pruned, voter_small)
        assert after.pq_star >= before.pq_star
        assert after.pc > 0.0


class TestScalabilityShape:
    def test_blocking_time_grows_subquadratically(self):
        """Fig. 13 (d): doubling records must not quadruple LSH time."""
        import time

        from repro.datasets import NCVoterLikeGenerator

        if os.environ.get("REPRO_SKIP_SLOW"):
            pytest.skip("slow test skipped by REPRO_SKIP_SLOW")

        times = []
        for n in (1000, 2000):
            ds = NCVoterLikeGenerator(num_records=n, seed=3).generate()
            blocker = LSHBlocker(VOTER_ATTRS, q=2, k=9, l=15, seed=1)
            start = time.perf_counter()
            blocker.block(ds)
            times.append(time.perf_counter() - start)
        # Allow generous noise: 2x data must stay under 3.5x time.
        assert times[1] < times[0] * 3.5
