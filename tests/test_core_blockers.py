"""Tests for LSHBlocker, SALSHBlocker and BlockingResult."""

import pytest

from repro.core import LSHBlocker, SALSHBlocker
from repro.core.base import BlockingResult, make_blocks
from repro.datasets import fig1_dataset, fig1_semantic_function
from repro.errors import ConfigurationError
from repro.evaluation import evaluate_blocks
from repro.records import Dataset, Record


class TestBlockingResult:
    def test_distinct_pairs_deduplicate_across_blocks(self):
        result = BlockingResult("x", (("a", "b"), ("b", "a"), ("a", "b", "c")))
        assert result.distinct_pairs == frozenset(
            {("a", "b"), ("a", "c"), ("b", "c")}
        )

    def test_multiset_comparisons_count_redundancy(self):
        result = BlockingResult("x", (("a", "b"), ("a", "b", "c")))
        assert result.num_multiset_comparisons == 1 + 3

    def test_max_block_size(self):
        result = BlockingResult("x", (("a", "b"), ("a", "b", "c")))
        assert result.max_block_size == 3

    def test_record_block_ids(self):
        result = BlockingResult("x", (("a", "b"), ("b", "c")))
        assignment = result.record_block_ids()
        assert assignment["b"] == [0, 1]
        assert assignment["a"] == [0]

    def test_make_blocks_drops_singletons(self):
        assert make_blocks([["a"], ["a", "b"]]) == (("a", "b"),)

    def test_with_timing(self):
        result = BlockingResult("x", ()).with_timing(1.5)
        assert result.seconds == 1.5


class TestLSHBlocker:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            LSHBlocker(("title",), q=2, k=0, l=5)

    def test_identical_records_always_co_blocked(self):
        """Prop 5.2(1): textually identical records share every band."""
        ds = Dataset(
            [
                Record("a", {"title": "exactly the same"}, entity_id="e"),
                Record("b", {"title": "exactly the same"}, entity_id="e"),
                Record("c", {"title": "something else entirely ok"}, entity_id="f"),
            ]
        )
        blocker = LSHBlocker(("title",), q=2, k=2, l=4, seed=1)
        result = blocker.block(ds)
        assert ("a", "b") in result.distinct_pairs

    def test_deterministic_given_seed(self, tiny_dataset):
        b1 = LSHBlocker(("title",), q=2, k=2, l=6, seed=5).block(tiny_dataset)
        b2 = LSHBlocker(("title",), q=2, k=2, l=6, seed=5).block(tiny_dataset)
        assert b1.distinct_pairs == b2.distinct_pairs

    def test_different_seed_may_differ(self, tiny_dataset):
        b1 = LSHBlocker(("title",), q=2, k=4, l=2, seed=1).block(tiny_dataset)
        b2 = LSHBlocker(("title",), q=2, k=4, l=2, seed=2).block(tiny_dataset)
        # Not guaranteed different, but the metadata must reflect seeds;
        # the stronger check: both remain valid blockings of the dataset.
        for result in (b1, b2):
            for block in result.blocks:
                assert len(block) >= 2

    def test_recall_increases_with_tables(self, tiny_dataset):
        few = LSHBlocker(("title",), q=2, k=3, l=1, seed=3).block(tiny_dataset)
        many = LSHBlocker(("title",), q=2, k=3, l=12, seed=3).block(tiny_dataset)
        pc_few = evaluate_blocks(few, tiny_dataset).pc
        pc_many = evaluate_blocks(many, tiny_dataset).pc
        assert pc_many >= pc_few

    def test_metadata_and_timing_recorded(self, tiny_dataset):
        result = LSHBlocker(("title",), q=2, k=2, l=2, seed=0).block(tiny_dataset)
        assert result.metadata["k"] == 2
        assert result.seconds is not None and result.seconds >= 0.0

    def test_describe_mentions_parameters(self):
        blocker = LSHBlocker(("title",), q=3, k=4, l=63)
        assert "k=4" in blocker.describe() and "l=63" in blocker.describe()


class TestSALSHBlocker:
    def test_fig1_running_example(self):
        """Semantic gating removes the r4 pairs of Example 5.1:
        r4 (technical report) must not co-block with r1/r2 (conference
        versions) even though their titles are nearly identical."""
        ds = fig1_dataset()
        sf = fig1_semantic_function()
        lsh = LSHBlocker(("title", "authors"), q=2, k=2, l=8, seed=11)
        salsh = SALSHBlocker(
            ("title", "authors"), q=2, k=2, l=8, seed=11,
            semantic_function=sf, w="all", mode="or",
        )
        textual_pairs = lsh.block(ds).distinct_pairs
        semantic_pairs = salsh.block(ds).distinct_pairs

        assert ("r1", "r4") in textual_pairs  # textually near-identical
        assert ("r1", "r4") not in semantic_pairs  # c4 vs c7: simS = 0
        assert ("r2", "r4") not in semantic_pairs
        # Semantically compatible pairs survive the gate.
        assert ("r1", "r2") in semantic_pairs

    def test_salsh_pairs_subset_of_lsh(self, cora_small, tbib):
        """Prop 5.3: the semantic gate only removes pairs."""
        from repro.semantic import PatternSemanticFunction, cora_patterns

        sf = PatternSemanticFunction(tbib, cora_patterns())
        lsh = LSHBlocker(("authors", "title"), q=3, k=2, l=8, seed=4)
        salsh = SALSHBlocker(
            ("authors", "title"), q=3, k=2, l=8, seed=4,
            semantic_function=sf, w="all", mode="or",
        )
        assert salsh.block(cora_small).distinct_pairs <= lsh.block(
            cora_small
        ).distinct_pairs

    def test_semantically_disjoint_pairs_never_block(self, tbib):
        """Prop 5.3(1) end to end: identical text, unrelated concepts."""
        from repro.semantic import CallableSemanticFunction

        ds = Dataset(
            [
                Record("j", {"title": "identical title", "kind": "journal"}),
                Record("t", {"title": "identical title", "kind": "techreport"}),
            ]
        )
        sf = CallableSemanticFunction(
            tbib, lambda r: ("c3",) if r.get("kind") == "journal" else ("c7",)
        )
        salsh = SALSHBlocker(
            ("title",), q=2, k=1, l=10, seed=0,
            semantic_function=sf, w="all", mode="or",
        )
        assert salsh.block(ds).distinct_pairs == frozenset()

    def test_sf_seconds_recorded(self, tiny_dataset, tbib):
        from repro.semantic import CallableSemanticFunction

        sf = CallableSemanticFunction(tbib, lambda r: ("c3",))
        salsh = SALSHBlocker(
            ("title",), q=2, k=2, l=2, seed=0, semantic_function=sf
        )
        result = salsh.block(tiny_dataset)
        assert result.metadata["sf_seconds"] >= 0.0
        assert result.metadata["num_semantic_bits"] >= 1

    def test_invalid_mode_rejected(self, tbib):
        from repro.semantic import CallableSemanticFunction

        sf = CallableSemanticFunction(tbib, lambda r: ("c3",))
        with pytest.raises(ConfigurationError):
            SALSHBlocker(
                ("title",), q=2, k=2, l=2, semantic_function=sf, mode="nand"
            )
