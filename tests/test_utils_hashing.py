"""Tests for universal hashing used by minhash."""

import numpy as np
import pytest

from repro.utils.hashing import (
    MERSENNE_PRIME_61,
    UniversalHashFamily,
    stable_hash,
)


def test_stable_hash_is_stable():
    assert stable_hash("entity resolution") == stable_hash("entity resolution")


def test_stable_hash_differs_for_different_strings():
    assert stable_hash("abc") != stable_hash("abd")


def test_stable_hash_range():
    for text in ("", "a", "blocking", "x" * 100):
        assert 0 <= stable_hash(text) < (1 << 61)


def test_family_rejects_zero_functions():
    with pytest.raises(ValueError):
        UniversalHashFamily(0, seed=1)


def test_family_same_seed_same_coefficients():
    values = np.array([3, 14, 159], dtype=np.uint64)
    f1 = UniversalHashFamily(8, seed=5)
    f2 = UniversalHashFamily(8, seed=5)
    assert np.array_equal(f1.min_over(values), f2.min_over(values))


def test_family_different_seeds_differ():
    values = np.array([3, 14, 159], dtype=np.uint64)
    f1 = UniversalHashFamily(8, seed=5)
    f2 = UniversalHashFamily(8, seed=6)
    assert not np.array_equal(f1.min_over(values), f2.min_over(values))


def test_min_over_empty_returns_sentinel():
    family = UniversalHashFamily(4, seed=0)
    result = family.min_over(np.array([], dtype=np.uint64))
    assert np.all(result == MERSENNE_PRIME_61)


def test_min_over_matches_exact_object_arithmetic():
    """The split-multiply modular trick must agree with Python ints."""
    family = UniversalHashFamily(16, seed=11)
    values = np.array(
        [0, 1, 2, MERSENNE_PRIME_61 - 1, 123456789012345678 % MERSENNE_PRIME_61],
        dtype=np.uint64,
    )
    exact_matrix = family.hash_matrix(values)
    exact_min = exact_matrix.min(axis=1)
    fast_min = family.min_over(values)
    assert np.array_equal(exact_min, fast_min)


def test_min_over_results_below_modulus():
    family = UniversalHashFamily(8, seed=3)
    values = np.array([17, 8912, 55555], dtype=np.uint64)
    assert np.all(family.min_over(values) < MERSENNE_PRIME_61)


def test_min_over_single_value_equals_hash():
    family = UniversalHashFamily(4, seed=9)
    value = np.array([42], dtype=np.uint64)
    assert np.array_equal(
        family.min_over(value), family.hash_matrix(value)[:, 0]
    )
