"""Tests for the command-line interface (generate / block / evaluate / resolve)."""

import pytest

from repro.cli import main
from repro.records import read_csv, read_pairs_csv


@pytest.fixture()
def generated_csv(tmp_path):
    path = tmp_path / "voters.csv"
    exit_code = main([
        "generate", "--kind", "ncvoter", "--records", "300",
        "--seed", "5", "--out", str(path),
    ])
    assert exit_code == 0
    return path


class TestGenerate:
    def test_generates_requested_records(self, generated_csv):
        dataset = read_csv(generated_csv)
        assert len(dataset) == 300
        assert dataset.num_true_matches > 0

    def test_cora_kind(self, tmp_path):
        path = tmp_path / "cora.csv"
        assert main([
            "generate", "--kind", "cora", "--records", "100", "--out", str(path),
        ]) == 0
        dataset = read_csv(path)
        assert len(dataset) == 100
        assert any(r.has_value("journal") for r in dataset)


class TestBlock:
    def test_lsh_blocking(self, generated_csv, tmp_path, capsys):
        pairs_path = tmp_path / "pairs.csv"
        exit_code = main([
            "block", "--input", str(generated_csv), "--technique", "lsh",
            "--attributes", "first_name,last_name",
            "--q", "2", "--k", "5", "--l", "10",
            "--out", str(pairs_path),
        ])
        assert exit_code == 0
        assert "candidate pairs" in capsys.readouterr().out
        assert pairs_path.exists()

    def test_salsh_with_voter_domain(self, generated_csv, tmp_path):
        pairs_path = tmp_path / "pairs.csv"
        exit_code = main([
            "block", "--input", str(generated_csv), "--technique", "salsh",
            "--attributes", "first_name,last_name", "--domain", "voter",
            "--q", "2", "--k", "5", "--l", "10",
            "--out", str(pairs_path),
        ])
        assert exit_code == 0
        assert isinstance(read_pairs_csv(pairs_path), set)

    def test_pooled_blocking_matches_fresh_pool(self, generated_csv, tmp_path):
        # --pooled runs the sharded runtime on one persistent shard
        # pool spanning the command; the pairs must equal the
        # fresh-pool-per-call --processes path.
        fresh_path = tmp_path / "fresh.csv"
        pooled_path = tmp_path / "pooled.csv"
        common = [
            "block", "--input", str(generated_csv), "--technique", "lsh",
            "--attributes", "first_name,last_name",
            "--q", "2", "--k", "5", "--l", "10", "--processes", "2",
        ]
        assert main(common + ["--out", str(fresh_path)]) == 0
        assert main(common + ["--pooled", "--out", str(pooled_path)]) == 0
        assert read_pairs_csv(pooled_path) == read_pairs_csv(fresh_path)

    def test_pooled_without_processes_defaults_to_all_cpus(
        self, generated_csv, tmp_path
    ):
        # --pooled with no --processes must not silently fall back to
        # the serial path (a one-process pool would never be used); it
        # defaults the process count to all CPUs instead.
        serial_path = tmp_path / "serial.csv"
        pooled_path = tmp_path / "pooled.csv"
        common = [
            "block", "--input", str(generated_csv), "--technique", "lsh",
            "--attributes", "first_name,last_name",
            "--q", "2", "--k", "5", "--l", "10",
        ]
        assert main(common + ["--out", str(serial_path)]) == 0
        assert main(common + ["--pooled", "--out", str(pooled_path)]) == 0
        assert read_pairs_csv(pooled_path) == read_pairs_csv(serial_path)

    def test_survey_technique_by_name(self, generated_csv, tmp_path):
        pairs_path = tmp_path / "pairs.csv"
        assert main([
            "block", "--input", str(generated_csv), "--technique", "tblo",
            "--attributes", "first_name,last_name", "--out", str(pairs_path),
        ]) == 0

    def test_unknown_technique_fails_cleanly(self, generated_csv, tmp_path, capsys):
        exit_code = main([
            "block", "--input", str(generated_csv), "--technique", "wat",
            "--attributes", "first_name", "--out", str(tmp_path / "x.csv"),
        ])
        assert exit_code == 2
        assert "unknown technique" in capsys.readouterr().err

    def test_empty_attributes_fails_cleanly(self, generated_csv, tmp_path):
        assert main([
            "block", "--input", str(generated_csv), "--technique", "lsh",
            "--attributes", " , ", "--out", str(tmp_path / "x.csv"),
        ]) == 2


class TestEvaluateAndResolve:
    def test_full_cli_pipeline(self, generated_csv, tmp_path, capsys):
        pairs_path = tmp_path / "pairs.csv"
        main([
            "block", "--input", str(generated_csv), "--technique", "salsh",
            "--attributes", "first_name,last_name", "--domain", "voter",
            "--q", "2", "--k", "5", "--l", "10", "--out", str(pairs_path),
        ])
        capsys.readouterr()

        assert main([
            "evaluate", "--input", str(generated_csv), "--pairs", str(pairs_path),
        ]) == 0
        assert "PC=" in capsys.readouterr().out

        assert main([
            "resolve", "--input", str(generated_csv), "--pairs", str(pairs_path),
            "--attributes", "first_name,last_name", "--threshold", "0.9",
        ]) == 0
        out = capsys.readouterr().out
        assert "matched pairs" in out
        assert "P=" in out


@pytest.fixture()
def linked_csvs(generated_csv, tmp_path):
    """The generated voter corpus split into source (dupes) / target (clean)."""
    from repro.records import Dataset, write_csv

    dataset = read_csv(generated_csv)
    source = Dataset(
        [r for r in dataset if r.record_id.startswith("d")], name="dirty"
    )
    target = Dataset(
        [r for r in dataset if r.record_id.startswith("v")], name="clean"
    )
    source_path = tmp_path / "source.csv"
    target_path = tmp_path / "target.csv"
    write_csv(source, source_path)
    write_csv(target, target_path)
    return source_path, target_path, len(source), len(target)


class TestLink:
    ARGS = ["--technique", "lsh", "--attributes", "first_name,last_name,city",
            "--q", "2", "--k", "9", "--l", "15"]

    def test_pairs_mode(self, linked_csvs, tmp_path, capsys):
        source_path, target_path, num_src, num_tgt = linked_csvs
        pairs_path = tmp_path / "pairs.csv"
        assert main([
            "link", "--source", str(source_path), "--target", str(target_path),
            *self.ARGS, "--out", str(pairs_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "cross-dataset candidate pairs" in out
        assert "PC=" in out  # both sides carry entity ids -> quality line
        pairs = read_pairs_csv(pairs_path)
        assert pairs
        for a, b in pairs:
            assert a.startswith("d") and b.startswith("v")

    def test_single_csv_with_dataset_column(self, generated_csv, tmp_path, capsys):
        from repro.records import (
            Dataset, LinkedCorpus, read_csv as _read, write_linked_csv,
        )

        dataset = _read(generated_csv)
        linked = LinkedCorpus(
            Dataset([r for r in dataset if r.record_id.startswith("d")],
                    name="dirty"),
            Dataset([r for r in dataset if r.record_id.startswith("v")],
                    name="clean"),
        )
        both_path = tmp_path / "both.csv"
        write_linked_csv(linked, both_path)
        assert main([
            "link", "--input", str(both_path), "--source-name", "dirty",
            "--target-name", "clean", *self.ARGS,
        ]) == 0
        assert "cross-dataset candidate pairs" in capsys.readouterr().out

    def test_resolve_mode(self, linked_csvs, tmp_path, capsys):
        source_path, target_path, num_src, _ = linked_csvs
        out_path = tmp_path / "resolved.csv"
        assert main([
            "link", "--source", str(source_path), "--target", str(target_path),
            *self.ARGS, "--similarity", "jaro_winkler", "--resolve",
            "--out", str(out_path),
        ]) == 0
        assert "linked" in capsys.readouterr().out
        rows = out_path.read_text().strip().splitlines()
        assert len(rows) == num_src + 1  # header + one row per source record

    def test_input_and_sides_conflict(self, linked_csvs, tmp_path, capsys):
        source_path, target_path, _, _ = linked_csvs
        assert main([
            "link", "--input", str(source_path), "--source", str(source_path),
            "--target", str(target_path), *self.ARGS,
        ]) == 2
        assert "not both" in capsys.readouterr().err

    def test_missing_sides_fail_cleanly(self, linked_csvs, capsys):
        source_path, _, _, _ = linked_csvs
        assert main(["link", "--source", str(source_path), *self.ARGS]) == 2
        assert "needs --input or both" in capsys.readouterr().err
