"""Tests for Soundex and NYSIIS phonetic encodings."""

import pytest

from repro.text.phonetic import nysiis, soundex


class TestSoundex:
    REFERENCE = [
        ("Robert", "R163"),
        ("Rupert", "R163"),
        ("Ashcraft", "A261"),
        ("Ashcroft", "A261"),
        ("Tymczak", "T522"),
        ("Pfister", "P236"),
        ("Honeyman", "H555"),
    ]

    @pytest.mark.parametrize("name,code", REFERENCE)
    def test_reference_codes(self, name, code):
        assert soundex(name) == code

    def test_smith_smyth_collide(self):
        assert soundex("smith") == soundex("smyth")

    def test_case_insensitive(self):
        assert soundex("WANG") == soundex("wang")

    def test_non_letters_ignored(self):
        assert soundex("o'brien") == soundex("obrien")

    def test_empty_string(self):
        assert soundex("") == "0000"

    def test_short_names_zero_padded(self):
        assert len(soundex("li")) == 4

    def test_custom_length(self):
        assert len(soundex("washington", length=6)) == 6


class TestNysiis:
    def test_knight_night_collide(self):
        assert nysiis("knight") == nysiis("night")

    def test_phonetic_family(self):
        assert nysiis("phillips") == nysiis("filips")

    def test_deterministic_and_upper(self):
        code = nysiis("maclean")
        assert code == nysiis("maclean")
        assert code == code.upper()

    def test_empty(self):
        assert nysiis("") == ""

    def test_distinct_names_usually_distinct(self):
        assert nysiis("washington") != nysiis("gonzalez")

    def test_trailing_s_dropped(self):
        assert not nysiis("brooks").endswith("S") or len(nysiis("brooks")) == 1
