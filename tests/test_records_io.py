"""Tests for CSV dataset and pairs round-trips."""

import pytest

from repro.errors import DatasetError
from repro.records import (
    Dataset,
    Record,
    read_csv,
    read_pairs_csv,
    write_csv,
    write_pairs_csv,
)


def dataset():
    return Dataset(
        [
            Record("r1", {"name": "anna", "city": "raleigh"}, entity_id="e1"),
            Record("r2", {"name": "anna,comma", "city": ""}, entity_id="e1"),
            Record("r3", {"name": 'quote "inside"', "city": "cary"}),
        ],
        name="io-test",
    )


class TestDatasetCsv:
    def test_round_trip_preserves_everything(self, tmp_path):
        path = tmp_path / "data.csv"
        original = dataset()
        write_csv(original, path)
        loaded = read_csv(path)
        assert loaded.record_ids == original.record_ids
        for record in original:
            clone = loaded[record.record_id]
            assert dict(clone.fields) == dict(record.fields)
            assert clone.entity_id == record.entity_id

    def test_ground_truth_survives_round_trip(self, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(dataset(), path)
        assert read_csv(path).true_matches == {("r1", "r2")}

    def test_missing_id_column_raises(self, tmp_path):
        path = tmp_path / "broken.csv"
        path.write_text("name\nanna\n")
        with pytest.raises(DatasetError):
            read_csv(path)

    def test_blank_id_raises(self, tmp_path):
        path = tmp_path / "broken.csv"
        path.write_text("record_id,name\n,anna\n")
        with pytest.raises(DatasetError):
            read_csv(path)

    def test_read_without_entity_column(self, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("record_id,name\nr1,anna\n")
        loaded = read_csv(path)
        assert loaded["r1"].entity_id is None
        assert loaded["r1"].get("name") == "anna"

    def test_generator_output_round_trips(self, tmp_path, voter_small):
        path = tmp_path / "voter.csv"
        write_csv(voter_small, path)
        loaded = read_csv(path)
        assert len(loaded) == len(voter_small)
        assert loaded.num_true_matches == voter_small.num_true_matches


class TestPairsCsv:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "pairs.csv"
        pairs = {("a", "b"), ("c", "d")}
        write_pairs_csv(pairs, path)
        assert read_pairs_csv(path) == pairs

    def test_empty_pairs(self, tmp_path):
        path = tmp_path / "pairs.csv"
        write_pairs_csv(set(), path)
        assert read_pairs_csv(path) == set()

    def test_not_a_pairs_file(self, tmp_path):
        path = tmp_path / "other.csv"
        path.write_text("x,y\n1,2\n")
        with pytest.raises(DatasetError):
            read_pairs_csv(path)
