"""Batch-engine equivalence: the corpus-level vectorized signature path
must be byte-identical to the legacy per-record path.

Covers every layer of the batch engine (see DESIGN.md, "Batch signature
engine"): shingled corpora, minhash signature matrices (including the
runner-up form used by multi-probe LSH), band keys, semhash signatures
(dense and packed), and the final blocks of every blocker on Cora-like
and NC-Voter-like samples.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LSHBlocker, SALSHBlocker
from repro.core.lsh_variants import (
    LSHForestBlocker,
    MultiProbeLSHBlocker,
    _MinHasherWithRunnerUp,
)
from repro.lsh.bands import split_bands, split_bands_matrix
from repro.lsh.index import BandedLSHIndex, grouped_indices
from repro.minhash import MinHasher, Shingler
from repro.records import Dataset, Record
from repro.semantic import (
    SemhashEncoder,
    VoterSemanticFunction,
    pack_signatures,
    pairwise_jaccard_packed,
    semhash_jaccard,
    semhash_jaccard_packed,
    unpack_signatures,
)


def title_dataset(titles: list[str]) -> Dataset:
    return Dataset(
        [Record(f"r{i}", {"title": t}) for i, t in enumerate(titles)]
    )


#: Hand-picked corpus exercising the awkward layouts: duplicates, an
#: empty record mid-stream, a single-shingle record, and a trailing
#: empty record (the reduceat edge cases).
EDGE_TITLES = [
    "alpha beta gamma",
    "alpha beta gamma",
    "",
    "x",
    "delta epsilon",
    "alpha bexa gamna",
    "",
]


class TestShingledCorpus:
    def test_corpus_rows_match_per_record_ids(self, cora_small):
        shingler = Shingler(("authors", "title"), q=3)
        corpus = shingler.shingle_corpus(cora_small)
        assert corpus.record_ids == tuple(cora_small.record_ids)
        for row, record in enumerate(cora_small):
            batch_ids = np.sort(corpus.shingle_ids_of(row))
            legacy_ids = np.sort(shingler.shingle_ids(record))
            assert np.array_equal(batch_ids, legacy_ids)

    def test_vocabulary_is_interned(self):
        shingler = Shingler(("title",), q=2)
        corpus = shingler.shingle_corpus(title_dataset(["abab", "abab", "abxy"]))
        # 'ab', 'ba', 'bx', 'xy' — shared grams appear once in the vocab.
        assert corpus.vocab_size == 4
        assert corpus.num_tokens == 2 + 2 + 3

    def test_corpus_jaccard_matches_textual(self, voter_small):
        shingler = Shingler(("first_name", "last_name"), q=2)
        records = list(voter_small)[:60]
        corpus = shingler.shingle_corpus(records)
        for i in range(0, 50, 7):
            for j in range(1, 60, 11):
                expected = shingler.jaccard(records[i], records[j])
                assert corpus.jaccard(i, j) == pytest.approx(expected, abs=0)

    def test_empty_corpus(self):
        shingler = Shingler(("title",), q=2)
        corpus = shingler.shingle_corpus([])
        hasher = MinHasher(8, seed=0)
        assert corpus.num_records == 0
        assert hasher.signature_matrix(corpus).shape == (0, 8)


class TestSignatureMatrixEquivalence:
    def assert_equivalent(self, titles: list[str], num_hashes=16, seed=9, q=2):
        dataset = title_dataset(titles)
        shingler = Shingler(("title",), q=q)
        hasher = MinHasher(num_hashes, seed=seed)
        corpus = shingler.shingle_corpus(dataset)
        batch = hasher.signature_matrix(corpus)
        legacy = np.stack(
            [hasher.signature(shingler.shingle_ids(r)) for r in dataset]
        )
        assert np.array_equal(batch, legacy)

    def test_edge_layouts(self):
        self.assert_equivalent(EDGE_TITLES)

    def test_all_empty(self):
        self.assert_equivalent(["", "", ""])

    def test_chunking_is_invisible(self):
        dataset = title_dataset(EDGE_TITLES)
        shingler = Shingler(("title",), q=2)
        hasher = MinHasher(24, seed=3)
        corpus = shingler.shingle_corpus(dataset)
        full = hasher.signature_matrix(corpus)
        tiny_chunks = hasher.signature_matrix(corpus, chunk_elements=1)
        assert np.array_equal(full, tiny_chunks)

    def test_fixture_corpora(self, cora_small, voter_small):
        for dataset, attributes, q in (
            (cora_small, ("authors", "title"), 4),
            (voter_small, ("first_name", "last_name"), 2),
        ):
            shingler = Shingler(attributes, q=q)
            hasher = MinHasher(32, seed=42)
            corpus = shingler.shingle_corpus(dataset)
            batch = hasher.signature_matrix(corpus)
            for row in range(0, corpus.num_records, 37):
                legacy = hasher.signature(
                    shingler.shingle_ids(dataset[corpus.record_ids[row]])
                )
                assert np.array_equal(batch[row], legacy)

    @settings(max_examples=40, deadline=None)
    @given(
        titles=st.lists(
            st.text(alphabet="abcdef ", max_size=12), min_size=1, max_size=12
        ),
        num_hashes=st.integers(min_value=1, max_value=20),
        seed=st.integers(min_value=0, max_value=5),
    )
    def test_property_random_corpora(self, titles, num_hashes, seed):
        self.assert_equivalent(titles, num_hashes=num_hashes, seed=seed)

    @settings(max_examples=25, deadline=None)
    @given(
        titles=st.lists(
            st.text(alphabet="abcd ", max_size=10), min_size=1, max_size=10
        ),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_property_runner_up(self, titles, seed):
        dataset = title_dataset(titles)
        shingler = Shingler(("title",), q=2)
        hasher = _MinHasherWithRunnerUp(num_hashes=12, seed=seed)
        corpus = shingler.shingle_corpus(dataset)
        batch_min, batch_run = hasher.signature_matrix_with_runner_up(corpus)
        for row, record in enumerate(dataset):
            legacy_min, legacy_run = hasher.signature_with_runner_up(
                shingler.shingle_ids(record)
            )
            assert np.array_equal(batch_min[row], legacy_min)
            assert np.array_equal(batch_run[row], legacy_run)

    def test_runner_up_edge_layouts(self):
        dataset = title_dataset(EDGE_TITLES)
        shingler = Shingler(("title",), q=2)
        hasher = _MinHasherWithRunnerUp(num_hashes=16, seed=1)
        corpus = shingler.shingle_corpus(dataset)
        batch_min, batch_run = hasher.signature_matrix_with_runner_up(
            corpus, chunk_elements=1
        )
        for row, record in enumerate(dataset):
            legacy_min, legacy_run = hasher.signature_with_runner_up(
                shingler.shingle_ids(record)
            )
            assert np.array_equal(batch_min[row], legacy_min)
            assert np.array_equal(batch_run[row], legacy_run)


class TestBandKeyEquivalence:
    def test_matrix_keys_encode_split_bands(self):
        rng = np.random.default_rng(5)
        k, l, n = 3, 4, 20
        signatures = rng.integers(0, 1 << 61, size=(n, k * l), dtype=np.uint64)
        keys = split_bands_matrix(signatures, k, l)
        assert keys.shape == (n, l)
        for row in range(n):
            tuples = split_bands(signatures[row], k, l)
            for table in range(l):
                raw = keys[row, table].ljust(8 * k, b"\0")
                assert tuple(np.frombuffer(raw, dtype=np.uint64)) == tuples[table]

    def test_keys_collide_exactly_when_tuples_do(self):
        signatures = np.array(
            [[1, 2, 3, 4], [1, 2, 9, 9], [1, 2, 3, 4], [0, 2, 3, 4]],
            dtype=np.uint64,
        )
        keys = split_bands_matrix(signatures, k=2, l=2)
        assert keys[0, 0] == keys[1, 0] == keys[2, 0]
        assert keys[0, 0] != keys[3, 0]
        assert keys[0, 1] == keys[2, 1]
        assert keys[0, 1] != keys[1, 1]

    def test_wrong_shape_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            split_bands_matrix(np.zeros((3, 7), dtype=np.uint64), k=2, l=4)


class TestGroupedIndices:
    def test_matches_dict_insertion_order(self):
        labels = np.array([4, 1, 4, 2, 1, 4, 9])
        groups = grouped_indices(labels)
        as_lists = [g.tolist() for g in groups]
        assert as_lists == [[0, 2, 5], [1, 4], [3], [6]]

    def test_empty(self):
        assert grouped_indices(np.array([], dtype=np.int64)) == []

    def test_add_many_matches_looped_add(self, voter_small):
        shingler = Shingler(("first_name", "last_name"), q=2)
        hasher = MinHasher(12, seed=2)
        corpus = shingler.shingle_corpus(voter_small)
        signatures = hasher.signature_matrix(corpus)
        k, l = 3, 4

        looped = BandedLSHIndex(l)
        for row, rid in enumerate(corpus.record_ids):
            looped.add(rid, split_bands(signatures[row], k, l))
        bulk = BandedLSHIndex(l)
        bulk.add_many(corpus.record_ids, split_bands_matrix(signatures, k, l))

        assert looped.blocks() == bulk.blocks()
        assert looped.bucket_sizes() == bulk.bucket_sizes()

    def test_add_many_shape_validation(self):
        index = BandedLSHIndex(2)
        with pytest.raises(ValueError):
            index.add_many(["a", "b"], np.zeros((2, 3), dtype=np.uint64))
        with pytest.raises(ValueError):
            index.add_many(
                ["a"], np.zeros((1, 2), dtype=np.uint64), gate_entries=[None]
            )


class TestSemhashEquivalence:
    @pytest.fixture(scope="class")
    def encoder(self, voter_small):
        return SemhashEncoder(VoterSemanticFunction(), voter_small)

    def test_matrix_matches_encode(self, encoder, voter_small):
        matrix = encoder.signature_matrix(voter_small)
        for row, record in enumerate(voter_small):
            assert np.array_equal(matrix[row], encoder.encode(record))

    def test_packed_roundtrip(self, encoder, voter_small):
        dense = encoder.signature_matrix(voter_small)
        packed = encoder.packed_signature_matrix(voter_small)
        assert np.array_equal(unpack_signatures(packed, encoder.num_bits), dense)

    def test_packed_jaccard_matches_dense(self, encoder, voter_small):
        dense = encoder.signature_matrix(voter_small)
        packed = pack_signatures(dense)
        rows = range(0, len(voter_small), 41)
        for i in rows:
            for j in rows:
                expected = semhash_jaccard(dense[i], dense[j])
                assert semhash_jaccard_packed(packed[i], packed[j]) == expected

    def test_pairwise_packed_matches_scalar(self, encoder, voter_small):
        dense = encoder.signature_matrix(voter_small)
        packed = pack_signatures(dense)
        rng = np.random.default_rng(0)
        left = rng.integers(0, len(voter_small), size=64)
        right = rng.integers(0, len(voter_small), size=64)
        batch = pairwise_jaccard_packed(packed[left], packed[right])
        for position, (i, j) in enumerate(zip(left, right)):
            assert batch[position] == semhash_jaccard(dense[i], dense[j])

    def test_all_zero_rows_yield_zero(self):
        packed = pack_signatures(
            np.array([[0, 0, 0], [1, 0, 1]], dtype=np.uint8)
        )
        assert semhash_jaccard_packed(packed[0], packed[1]) == 0.0
        assert pairwise_jaccard_packed(packed[:1], packed[1:])[0] == 0.0


def _blocker_grid(sf_voter):
    voter_attrs = ("first_name", "last_name")
    cora_attrs = ("authors", "title")
    return [
        ("cora", lambda **kw: LSHBlocker(cora_attrs, q=4, k=4, l=12, seed=42, **kw)),
        ("voter", lambda **kw: LSHBlocker(voter_attrs, q=2, k=9, l=15, seed=42, **kw)),
        (
            "voter",
            lambda **kw: SALSHBlocker(
                voter_attrs, q=2, k=9, l=15, seed=42,
                semantic_function=sf_voter, w="all", mode="or", **kw,
            ),
        ),
        (
            "voter",
            lambda **kw: SALSHBlocker(
                voter_attrs, q=2, k=9, l=15, seed=42,
                semantic_function=sf_voter, w=2, mode="and", **kw,
            ),
        ),
        (
            "cora",
            lambda **kw: MultiProbeLSHBlocker(
                cora_attrs, q=4, k=3, l=4, seed=42, num_probes=2, **kw
            ),
        ),
        (
            "cora",
            lambda **kw: LSHForestBlocker(
                cora_attrs, q=4, k=4, l=4, seed=42, max_block_size=8, **kw
            ),
        ),
    ]


class TestBlockerEquivalence:
    def test_batch_blocks_identical_to_per_record(self, cora_small, voter_small):
        datasets = {"cora": cora_small, "voter": voter_small}
        for dataset_name, make in _blocker_grid(VoterSemanticFunction()):
            dataset = datasets[dataset_name]
            batch = make(batch=True).block(dataset)
            legacy = make(batch=False).block(dataset)
            label = f"{batch.blocker_name} on {dataset_name}"
            assert batch.blocks == legacy.blocks, label
            assert batch.metadata["engine"] == "batch"
            assert legacy.metadata["engine"] == "per-record"

    def test_blockers_handle_all_empty_records(self):
        dataset = Dataset(
            [Record(f"r{i}", {"title": ""}) for i in range(4)]
        )
        for make in (
            lambda **kw: LSHBlocker(("title",), q=2, k=2, l=3, seed=0, **kw),
            lambda **kw: MultiProbeLSHBlocker(("title",), q=2, k=2, l=3, seed=0, **kw),
            lambda **kw: LSHForestBlocker(("title",), q=2, k=2, l=3, seed=0, **kw),
        ):
            batch = make(batch=True).block(dataset)
            legacy = make(batch=False).block(dataset)
            assert batch.blocks == legacy.blocks
            # All-empty records share the sentinel signature -> one block.
            assert all(len(block) == 4 for block in batch.blocks)
