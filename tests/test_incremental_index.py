"""Incremental ≡ rebuild equivalence for the four online indexes.

Each blocker's ``online()`` index promises that after *any* interleaving
of ``add_many`` / ``remove`` calls (DESIGN.md, "Resolver service"):

* :meth:`blocks` equals a from-scratch rebuild over the surviving
  records in insertion order — the batch ``block()`` for LSH, MP-LSH
  and LSH-Forest, and ``block_stream`` under the index's frozen encoder
  for SA-LSH (a batch rebuild would re-derive the semhash bit set from
  the survivors alone, which is a different, not-incrementally-
  reachable configuration);
* :meth:`query` returns exactly what a freshly built index over the
  survivors would return for the same probe — live ids only, never the
  probe itself, no duplicates;
* removed ids are retired permanently and re-adding them raises.

The interleavings are seeded-random, so every run replays the same op
sequences; the sharded variants assert the same contract with
``processes=2`` and on a warm :class:`~repro.utils.parallel.ShardPool`.
"""

from __future__ import annotations

import pytest

from repro.core import (
    LSHBlocker,
    LSHForestBlocker,
    MultiProbeLSHBlocker,
    SALSHBlocker,
)
from repro.records import Dataset, Record
from repro.semantic import (
    PatternSemanticFunction,
    VoterSemanticFunction,
    cora_patterns,
)
from repro.taxonomy.builders import bibliographic_tree
from repro.utils.parallel import ShardPool
from repro.utils.rand import rng_from_seed

BLOCKER_KINDS = ("lsh", "salsh", "mplsh", "forest")

#: Per-corpus blocker parameters (matching the streamed SA-LSH suite).
_PARAMS = {
    "fig1": dict(attrs=("title", "authors"), q=3, k=2, l=3, seed=1),
    "cora": dict(attrs=("authors", "title"), q=3, k=3, l=6, seed=3),
    "voter": dict(attrs=("first_name", "last_name"), q=2, k=3, l=5, seed=3),
}


def _semantic_function(corpus_name, fig1_sf=None):
    if corpus_name == "fig1":
        return fig1_sf
    if corpus_name == "cora":
        return PatternSemanticFunction(bibliographic_tree(), cora_patterns())
    return VoterSemanticFunction()


def _blocker(kind, corpus_name, fig1_sf=None, **kw):
    params = _PARAMS[corpus_name]
    base = dict(q=params["q"], k=params["k"], l=params["l"],
                seed=params["seed"], **kw)
    attrs = params["attrs"]
    if kind == "lsh":
        return LSHBlocker(attrs, **base)
    if kind == "salsh":
        return SALSHBlocker(
            attrs, semantic_function=_semantic_function(corpus_name, fig1_sf),
            w="all" if corpus_name == "fig1" else 2, mode="or", **base,
        )
    if kind == "mplsh":
        return MultiProbeLSHBlocker(attrs, **base)
    return LSHForestBlocker(attrs, **base)


def _rebuild_blocks(blocker, online, survivors):
    """Blocks of a from-scratch rebuild over the surviving records."""
    if isinstance(blocker, SALSHBlocker):
        # The incremental index encodes against its frozen bit set;
        # the honest rebuild is the streamed path under that encoder.
        return blocker.block_stream([survivors], encoder=online.encoder).blocks
    return blocker.block(Dataset(survivors, name="rebuild")).blocks


def _fresh_online(blocker, online, survivors):
    if isinstance(blocker, SALSHBlocker):
        return blocker.online(survivors, encoder=online.encoder)
    return blocker.online(survivors)


def _check_equivalent(blocker, online, inserted, removed, probes):
    survivors = [r for r in inserted if r.record_id not in removed]
    assert online.blocks() == _rebuild_blocks(blocker, online, survivors)
    rebuilt = _fresh_online(blocker, online, survivors)
    live = {r.record_id for r in survivors}
    for probe in probes:
        candidates = online.query(probe)
        assert sorted(candidates) == sorted(rebuilt.query(probe))
        assert len(candidates) == len(set(candidates))
        assert set(candidates) <= live - {probe.record_id}


def _exercise(blocker, dataset, seed, *, num_ops=14):
    """Replay one seeded add/remove interleaving, checking equivalence
    twice mid-run and once at the end."""
    records = list(dataset)
    rng = rng_from_seed(seed, "incremental-ops", dataset.name)
    rng.shuffle(records)
    split = max(2, (2 * len(records)) // 3)
    initial, pending = records[:split], records[split:]
    online = blocker.online(initial)
    inserted = list(initial)
    removed: set[str] = set()
    probes = rng.sample(records, min(6, len(records)))
    check_at = set(rng.sample(range(num_ops), 2))
    for step in range(num_ops):
        op = rng.choice(("add", "add", "remove"))
        if op == "add" and pending:
            n = rng.randint(1, min(8, len(pending)))
            slab, pending = pending[:n], pending[n:]
            online.add_many(slab)
            inserted.extend(slab)
        elif len(inserted) - len(removed) > 2:
            live = [r for r in inserted if r.record_id not in removed]
            victim = rng.choice(live)
            online.remove(victim.record_id)
            removed.add(victim.record_id)
        if step in check_at:
            _check_equivalent(blocker, online, inserted, removed, probes)
    assert removed, "interleaving never removed anything"
    _check_equivalent(blocker, online, inserted, removed, probes)
    return online


class TestIncrementalEqualsRebuild:
    @pytest.mark.parametrize("kind", BLOCKER_KINDS)
    def test_fig1(self, fig1, fig1_sf, kind):
        _exercise(_blocker(kind, "fig1", fig1_sf), fig1, seed=11)

    @pytest.mark.parametrize("kind", BLOCKER_KINDS)
    def test_cora(self, cora_small, kind):
        _exercise(_blocker(kind, "cora"), cora_small, seed=12)

    @pytest.mark.parametrize("kind", BLOCKER_KINDS)
    def test_voter(self, voter_small, kind):
        _exercise(_blocker(kind, "voter"), voter_small, seed=13)

    @pytest.mark.parametrize("kind", BLOCKER_KINDS)
    def test_slab_split_invariance(self, cora_small, kind):
        # One bulk insertion vs record-by-record adds: identical end
        # state (SA-LSH under a shared frozen encoder — record-by-record
        # freezing would fix the bit set from the first record alone).
        records = list(cora_small)[:60]
        blocker = _blocker(kind, "cora")
        bulk = blocker.online(records)
        if kind == "salsh":
            single = blocker.online((), encoder=bulk.encoder)
        else:
            single = blocker.online(())
        for record in records:
            single.add(record)
        assert bulk.blocks() == single.blocks()
        # Candidate sets are slab-layout-independent (ordering follows
        # the physical slab walk, so only the set is contractual).
        for probe in records[:5]:
            assert sorted(bulk.query(probe)) == sorted(single.query(probe))


class TestShardedRuntime:
    @pytest.mark.parametrize("kind", ("lsh", "salsh"))
    def test_processes_two(self, cora_small, kind):
        _exercise(_blocker(kind, "cora", processes=2), cora_small, seed=21)

    @pytest.mark.parametrize("kind", ("lsh", "salsh"))
    def test_warm_pool(self, cora_small, kind):
        with ShardPool(2) as pool:
            _exercise(
                _blocker(kind, "cora", processes=2, pool=pool),
                cora_small, seed=22,
            )


class TestMutationContract:
    @pytest.mark.parametrize("kind", BLOCKER_KINDS)
    def test_removed_ids_are_retired(self, cora_small, kind):
        records = list(cora_small)[:30]
        online = _blocker(kind, "cora").online(records)
        victim = records[0]
        online.remove(victim.record_id)
        assert online.is_retired(victim.record_id)
        assert not online.is_retired(records[1].record_id)
        with pytest.raises(KeyError):
            online.add(victim)
        with pytest.raises(KeyError):
            online.remove(victim.record_id)  # already gone
        with pytest.raises(KeyError):
            online.remove("never-indexed")
        assert online.num_live == len(records) - 1

    @pytest.mark.parametrize("kind", BLOCKER_KINDS)
    def test_query_never_mutates(self, cora_small, kind, fig1):
        records = list(cora_small)[:30]
        online = _blocker(kind, "cora").online(records)
        before = online.blocks()
        probes = records[:3] + list(fig1)[:2]  # known + foreign records
        for probe in probes:
            online.query(probe)
            online.query(probe)
        assert online.blocks() == before
        assert online.num_live == len(records)

    @pytest.mark.parametrize("kind", BLOCKER_KINDS)
    def test_empty_record_queries_empty(self, cora_small, kind):
        params = _PARAMS["cora"]
        online = _blocker(kind, "cora").online(list(cora_small)[:50])
        probe = Record("probe-empty", {a: "" for a in params["attrs"]})
        assert online.query(probe) == []
