"""Tests for the record/dataset model and ground-truth utilities."""

import pytest

from repro.errors import DatasetError
from repro.records import (
    Dataset,
    Record,
    entity_clusters,
    sorted_pair,
    true_match_pairs,
)


def make_record(rid="r1", title="a title", entity=None):
    return Record(rid, {"title": title}, entity_id=entity)


class TestRecord:
    def test_get_returns_value(self):
        record = make_record()
        assert record.get("title") == "a title"

    def test_get_missing_attribute_is_empty(self):
        assert make_record().get("authors") == ""

    def test_has_value_false_for_blank(self):
        record = Record("r", {"a": "  ", "b": "x"})
        assert not record.has_value("a")
        assert record.has_value("b")

    def test_fields_are_immutable(self):
        record = make_record()
        with pytest.raises(TypeError):
            record.fields["title"] = "other"  # type: ignore[index]

    def test_values_in_order(self):
        record = Record("r", {"a": "1", "b": "2"})
        assert record.values(("b", "a", "c")) == ["2", "1", ""]

    def test_equality_includes_fields_and_entity(self):
        assert make_record(entity="e") == make_record(entity="e")
        assert make_record(entity="e") != make_record(entity="f")
        assert make_record(title="x") != make_record(title="y")

    def test_hashable_by_id(self):
        assert len({make_record(), make_record()}) == 1


class TestGroundTruth:
    def test_sorted_pair_orders(self):
        assert sorted_pair("b", "a") == ("a", "b")
        assert sorted_pair("a", "b") == ("a", "b")

    def test_true_match_pairs_within_cluster(self):
        records = [make_record(f"r{i}", entity="e1") for i in range(3)]
        pairs = true_match_pairs(records)
        assert pairs == {("r0", "r1"), ("r0", "r2"), ("r1", "r2")}

    def test_unlabelled_records_ignored(self):
        records = [make_record("r1"), make_record("r2")]
        assert true_match_pairs(records) == set()

    def test_entity_clusters(self):
        records = [
            make_record("r1", entity="e1"),
            make_record("r2", entity="e1"),
            make_record("r3", entity="e2"),
            make_record("r4"),
        ]
        clusters = entity_clusters(records)
        assert clusters == {"e1": ["r1", "r2"], "e2": ["r3"]}


class TestDataset:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(DatasetError):
            Dataset([make_record("x"), make_record("x")])

    def test_len_iter_getitem_contains(self):
        ds = Dataset([make_record("a"), make_record("b")])
        assert len(ds) == 2
        assert [r.record_id for r in ds] == ["a", "b"]
        assert ds["a"].record_id == "a"
        assert "b" in ds and "c" not in ds

    def test_getitem_unknown_raises(self):
        ds = Dataset([make_record("a")])
        with pytest.raises(DatasetError):
            ds["zzz"]

    def test_total_pairs(self):
        ds = Dataset([make_record(f"r{i}") for i in range(5)])
        assert ds.total_pairs == 10

    def test_true_matches_cached_and_correct(self):
        ds = Dataset(
            [make_record("a", entity="e"), make_record("b", entity="e")]
        )
        assert ds.true_matches == {("a", "b")}
        assert ds.num_true_matches == 1

    def test_is_true_match(self):
        ds = Dataset(
            [
                make_record("a", entity="e"),
                make_record("b", entity="e"),
                make_record("c", entity="f"),
                make_record("d"),
            ]
        )
        assert ds.is_true_match("a", "b")
        assert not ds.is_true_match("a", "c")
        assert not ds.is_true_match("a", "d")
        assert not ds.is_true_match("d", "d")

    def test_subset_preserves_order(self):
        ds = Dataset([make_record(r) for r in ("a", "b", "c")])
        sub = ds.subset(["c", "a"])
        assert sub.record_ids == ["a", "c"]

    def test_sample_deterministic(self):
        ds = Dataset([make_record(f"r{i}") for i in range(20)])
        assert ds.sample(5, seed=3).record_ids == ds.sample(5, seed=3).record_ids

    def test_sample_too_large_raises(self):
        ds = Dataset([make_record("a")])
        with pytest.raises(DatasetError):
            ds.sample(2)
