"""Tests for Eq. 4 / Eq. 5 — every worked example of the paper."""

import pytest

from repro.semantic import (
    concept_similarity,
    leaf_expansion_similarity,
    record_semantic_similarity,
    related_pairs,
)
from repro.taxonomy import TaxonomyForest
from repro.taxonomy.builders import voter_tree


class TestConceptSimilarity:
    """Example 4.4 and the Eq. 3/4 properties."""

    def test_example_4_4_c0_c1(self, tbib):
        assert concept_similarity(tbib, "c0", "c1") == pytest.approx(5 / 6)

    def test_example_4_4_c1_c2(self, tbib):
        assert concept_similarity(tbib, "c1", "c2") == pytest.approx(3 / 5)

    def test_example_4_4_c0_c4(self, tbib):
        assert concept_similarity(tbib, "c0", "c4") == pytest.approx(1 / 6)

    def test_example_4_4_siblings_zero(self, tbib):
        assert concept_similarity(tbib, "c2", "c6") == 0.0

    def test_eq3_all_sibling_pairs_zero(self, tbib):
        for parent in ("c0", "c1", "c2", "c6"):
            children = tbib.children(parent)
            for i, c1 in enumerate(children):
                for c2 in children[i + 1 :]:
                    assert concept_similarity(tbib, c1, c2) == 0.0

    def test_self_similarity_one(self, tbib):
        for concept in tbib.concept_ids:
            assert concept_similarity(tbib, concept, concept) == 1.0

    def test_symmetry(self, tbib):
        assert concept_similarity(tbib, "c1", "c3") == concept_similarity(
            tbib, "c3", "c1"
        )

    def test_chain_monotonicity(self, tbib):
        """For c3 <= c2 <= c1: sim(c1,c3) <= sim(c2,c3) and <= sim(c1,c2)."""
        # chain: c3 (journal) <= c2 (peer reviewed) <= c1 (publication)
        s_13 = concept_similarity(tbib, "c1", "c3")
        s_23 = concept_similarity(tbib, "c2", "c3")
        s_12 = concept_similarity(tbib, "c1", "c2")
        assert s_13 <= s_23
        assert s_13 <= s_12

    def test_cross_tree_zero(self, tbib, tvoter):
        forest = TaxonomyForest.of(tbib, tvoter)
        assert concept_similarity(forest, "c3", "w_m") == 0.0


class TestRelatedPairs:
    def test_reflexive_pairs_included(self, tbib):
        pairs = related_pairs(tbib, {"c4"}, {"c3", "c4"})
        assert ("c4", "c4") in pairs
        assert ("c4", "c3") not in pairs  # siblings are unrelated

    def test_subsumption_pairs_included(self, tbib):
        pairs = related_pairs(tbib, {"c4"}, {"c0"})
        assert pairs == [("c4", "c0")]

    def test_empty_when_unrelated(self, tbib):
        assert related_pairs(tbib, {"c4"}, {"c7"}) == []


class TestRecordSimilarity:
    """Example 4.5 and Propositions 4.1 / 4.2."""

    def test_example_4_5_r1_r2(self, tbib):
        assert record_semantic_similarity(tbib, {"c4"}, {"c3", "c4"}) == 0.5

    def test_example_4_5_r1_r3(self, tbib):
        assert record_semantic_similarity(tbib, {"c4"}, {"c4"}) == 1.0

    def test_example_4_5_r1_r5(self, tbib):
        assert record_semantic_similarity(tbib, {"c4"}, {"c7"}) == 0.0

    def test_example_4_5_r2_r6(self, tbib):
        assert record_semantic_similarity(tbib, {"c3", "c4"}, {"c0"}) == pytest.approx(1 / 3)

    def test_example_4_5_r1_r6(self, tbib):
        assert record_semantic_similarity(tbib, {"c4"}, {"c0"}) == pytest.approx(1 / 6)

    def test_example_4_5_r5_r6(self, tbib):
        assert record_semantic_similarity(tbib, {"c7"}, {"c0"}) == pytest.approx(1 / 6)

    def test_proposition_4_1(self, tbib):
        """ζ(r1)={c}, ζ(r2)=child(c) implies similarity 1."""
        for internal in ("c0", "c1", "c2", "c6"):
            children = set(tbib.children(internal))
            assert record_semantic_similarity(
                tbib, {internal}, children
            ) == pytest.approx(1.0), internal

    def test_proposition_4_2_zero_iff_unrelated(self, tbib):
        assert record_semantic_similarity(tbib, {"c3"}, {"c7"}) == 0.0
        assert record_semantic_similarity(tbib, {"c3"}, {"c9"}) == 0.0
        assert record_semantic_similarity(tbib, {"c3"}, {"c2"}) > 0.0

    def test_empty_interpretation_zero(self, tbib):
        assert record_semantic_similarity(tbib, set(), {"c3"}) == 0.0
        assert record_semantic_similarity(tbib, set(), set()) == 0.0

    def test_symmetry(self, tbib):
        a, b = {"c3", "c4"}, {"c0"}
        assert record_semantic_similarity(tbib, a, b) == record_semantic_similarity(
            tbib, b, a
        )

    def test_matches_single_concept_similarity(self, tbib):
        """Singleton interpretations reduce to concept similarity."""
        for c1 in ("c0", "c1", "c2", "c3", "c7"):
            for c2 in ("c0", "c1", "c4", "c8"):
                assert record_semantic_similarity(
                    tbib, {c1}, {c2}
                ) == pytest.approx(concept_similarity(tbib, c1, c2))


class TestLeafExpansionEquivalence:
    """Eq. 5 == Jaccard of leaf expansions (the DESIGN.md identity)."""

    CASES = [
        ({"c4"}, {"c3", "c4"}),
        ({"c4"}, {"c4"}),
        ({"c4"}, {"c7"}),
        ({"c3", "c4"}, {"c0"}),
        ({"c4"}, {"c0"}),
        ({"c2"}, {"c3", "c7"}),
        ({"c1"}, {"c2", "c6"}),
        ({"c2", "c6"}, {"c3", "c8"}),
        ({"c9"}, {"c0"}),
        ({"c2"}, {"c6"}),
    ]

    @pytest.mark.parametrize("zeta1,zeta2", CASES)
    def test_equivalence_on_tbib(self, tbib, zeta1, zeta2):
        assert record_semantic_similarity(tbib, zeta1, zeta2) == pytest.approx(
            leaf_expansion_similarity(tbib, zeta1, zeta2)
        )

    def test_equivalence_on_voter_tree(self):
        tree = voter_tree()
        cases = [
            ({"w_m"}, {"race_w"}),
            ({"race_w"}, {"race_b"}),
            ({"v0"}, {"w_m", "b_f"}),
            ({"w_m", "b_m"}, {"race_w", "race_b"}),
        ]
        for zeta1, zeta2 in cases:
            assert record_semantic_similarity(tree, zeta1, zeta2) == pytest.approx(
                leaf_expansion_similarity(tree, zeta1, zeta2)
            )
