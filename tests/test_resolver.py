"""The online resolver service: tiers, mutations, degenerate probes.

Covers the serving surface built on the incremental indexes
(DESIGN.md, "Resolver service"):

* confidence tiers — an exact copy of an indexed record resolves to
  ``match`` against its source entity; a perturbed copy lands in the
  uncertain region; garbage comes back ``new``;
* mutations — additions are queryable immediately, removals disappear
  from the *next* query, removed ids are retired and a failed batch add
  leaves store and index untouched;
* degenerate probes — empty records, uninterpretable records
  (:class:`~repro.errors.SemanticFunctionError`) and records whose
  semantic leaves the frozen encoder never saw all resolve to ``new``
  with zero candidates, never an exception;
* :class:`~repro.records.dataset.RecordStore` bookkeeping and the
  :func:`~repro.core.pipeline.build_resolver` pipeline entry point;
* the ``query`` / ``serve-batch`` CLI round trip.
"""

from __future__ import annotations

import csv

import pytest

from repro.cli import main
from repro.core import LSHBlocker, SALSHBlocker, build_resolver
from repro.core.pipeline import PipelineConfig
from repro.er import Resolver, SimilarityMatcher
from repro.errors import ConfigurationError, DatasetError
from repro.records import Record, RecordStore, write_csv
from repro.semantic import (
    MissingValuePattern,
    PatternSemanticFunction,
    cora_patterns,
)
from repro.taxonomy.builders import BIB_JOURNAL, BIB_THESIS, bibliographic_tree


def _cora_resolver(cora_small, **kw):
    blocker = LSHBlocker(("authors", "title"), q=3, k=3, l=6, seed=3, **kw)
    return Resolver(blocker, cora_small)


def _copy_with_id(record, new_id):
    return Record(new_id, dict(record.fields))


class TestResolveTiers:
    def test_exact_copies_match_their_entity(self, cora_small):
        resolver = _cora_resolver(cora_small)
        records = list(cora_small)[:10]
        for i, source in enumerate(records):
            outcome = resolver.resolve_one(_copy_with_id(source, f"p{i}"))
            assert outcome.tier == "match"
            assert outcome.best_score == 1.0
            best = cora_small[outcome.best_id]
            assert best.entity_id == source.entity_id

    def test_three_tiers(self, tiny_dataset):
        # match_threshold=1.0: only a perfect score is a match, so the
        # one-character typo deterministically lands in the uncertain
        # region and unrelated text below it.
        blocker = LSHBlocker(("title",), q=2, k=2, l=8, seed=0)
        matcher = SimilarityMatcher(
            {"title": "jaccard_q2"},
            match_threshold=1.0, possible_threshold=0.5,
        )
        resolver = Resolver(blocker, tiny_dataset, matcher=matcher)
        exact = resolver.resolve_one(Record("p1", {"title": "alpha beta gamma"}))
        assert exact.tier == "match"
        assert exact.best_id in ("t1", "t2")
        typo = resolver.resolve_one(Record("p2", {"title": "alpha betta gamma"}))
        assert typo.tier == "possible"
        assert 0.5 <= typo.best_score < 1.0
        garbage = resolver.resolve_one(
            Record("p3", {"title": "zzz qqq www unrelated"})
        )
        assert garbage.tier == "new"
        assert garbage.best_id is None

    def test_outcome_shape(self, cora_small):
        resolver = _cora_resolver(cora_small)
        source = list(cora_small)[0]
        outcome = resolver.resolve_one(_copy_with_id(source, "probe"))
        scores = [c.score for c in outcome.candidates]
        assert scores == sorted(scores, reverse=True)
        assert outcome.num_candidates == len(outcome.candidates)
        for candidate in outcome.candidates:
            assert candidate.label == resolver.matcher.label_for(candidate.score)
        # tier 'new' <=> no best id, on every probe
        empty = resolver.resolve_one(Record("none", {"title": ""}))
        assert empty.tier == "new" and empty.best_id is None
        assert empty.num_candidates == 0

    def test_resolve_many(self, cora_small):
        resolver = _cora_resolver(cora_small)
        probes = [
            _copy_with_id(r, f"p{i}") for i, r in enumerate(list(cora_small)[:4])
        ]
        outcomes = resolver.resolve_many(probes)
        assert [o.record_id for o in outcomes] == [p.record_id for p in probes]
        assert all(o.tier == "match" for o in outcomes)


class TestResolverMutations:
    def test_added_records_are_queryable(self, cora_small):
        records = list(cora_small)
        resolver = Resolver(
            LSHBlocker(("authors", "title"), q=3, k=3, l=6, seed=3),
            records[:250],
        )
        late = _copy_with_id(records[0], "late-1")
        assert "late-1" not in resolver
        resolver.add(late)
        assert "late-1" in resolver
        probe = _copy_with_id(records[0], "probe")
        assert "late-1" in resolver.query(probe)

    def test_remove_respected_on_next_query(self, cora_small):
        resolver = _cora_resolver(cora_small)
        source = list(cora_small)[0]
        probe = _copy_with_id(source, "probe")
        first = resolver.resolve_one(probe)
        assert first.tier == "match"
        removed = resolver.remove(first.best_id)
        assert removed.record_id == first.best_id
        assert first.best_id not in resolver
        second = resolver.resolve_one(probe)
        assert first.best_id not in {c.record_id for c in second.candidates}
        assert first.best_id not in resolver.query(probe)

    def test_retired_ids_rejected_atomically(self, cora_small):
        resolver = _cora_resolver(cora_small)
        records = list(cora_small)
        resolver.remove(records[0].record_id)
        size = len(resolver)
        fresh = _copy_with_id(records[1], "fresh-1")
        with pytest.raises(DatasetError, match="retired"):
            resolver.add_many([fresh, records[0]])
        # Nothing from the failed batch landed in store or index.
        assert len(resolver) == size
        assert "fresh-1" not in resolver
        assert "fresh-1" not in resolver.query(
            _copy_with_id(records[1], "probe")
        )
        resolver.add(fresh)  # the valid half is still addable
        assert "fresh-1" in resolver

    def test_duplicate_ids_rejected_atomically(self, cora_small):
        resolver = _cora_resolver(cora_small)
        records = list(cora_small)
        size = len(resolver)
        with pytest.raises(DatasetError, match="duplicate"):
            resolver.add_many(
                [_copy_with_id(records[0], "dup-1"), records[1]]
            )
        assert len(resolver) == size
        assert "dup-1" not in resolver

    def test_offline_blocker_rejected(self, cora_small):
        class Batchy:
            attributes = ("title",)

        with pytest.raises(ConfigurationError, match="online"):
            Resolver(Batchy(), cora_small)


#: A deliberately incomplete Table 1: only journal records interpret.
def _journal_only_sf():
    journal = MissingValuePattern(
        present=("journal",), absent=(), concepts=(BIB_JOURNAL,)
    )
    thesis = MissingValuePattern(
        present=("institution",), absent=("journal",), concepts=(BIB_THESIS,)
    )
    return PatternSemanticFunction(bibliographic_tree(), [journal, thesis])


class TestUnseenSemantics:
    """Regression: probes outside the frozen encoder's world resolve to
    empty candidates instead of raising."""

    def _resolver(self):
        corpus = [
            Record(
                f"j{i}",
                {"title": f"alpha beta paper {i % 3}", "journal": "J. Test"},
            )
            for i in range(12)
        ]
        blocker = SALSHBlocker(
            ("title",), q=2, k=2, l=6, seed=0,
            semantic_function=_journal_only_sf(), w="all", mode="or",
        )
        return Resolver(blocker, corpus)

    def test_uninterpretable_probe_resolves_new(self):
        resolver = self._resolver()
        # No pattern matches (no journal, no institution) and there is
        # no fallback: the semantic function raises for this record.
        probe = Record("probe", {"title": "alpha beta paper 0"})
        assert resolver.query(probe) == []
        outcome = resolver.resolve_one(probe)
        assert outcome.tier == "new"
        assert outcome.num_candidates == 0

    def test_unseen_leaves_resolve_new(self):
        resolver = self._resolver()
        # Interprets fine (thesis pattern) but every leaf under C9/C10
        # is absent from the encoder frozen on journal-only records:
        # the all-zero semhash passes no gate.
        probe = Record(
            "probe", {"title": "alpha beta paper 0", "institution": "MIT"}
        )
        assert resolver.query(probe) == []
        assert resolver.resolve_one(probe).tier == "new"

    def test_interpretable_probe_still_matches(self):
        resolver = self._resolver()
        probe = Record(
            "probe", {"title": "alpha beta paper 0", "journal": "J. Test"}
        )
        outcome = resolver.resolve_one(probe)
        assert outcome.tier == "match"


class TestRecordStore:
    def test_basic_bookkeeping(self):
        store = RecordStore([Record("a", {"x": "1"})], name="s")
        store.add(Record("b", {"x": "2"}))
        assert len(store) == 2 and "a" in store and "nope" not in store
        assert store["b"].get("x") == "2"
        with pytest.raises(DatasetError):
            store["nope"]
        removed = store.remove("a")
        assert removed.record_id == "a" and "a" not in store
        with pytest.raises(KeyError):
            store.remove("a")
        with pytest.raises(DatasetError, match="duplicate"):
            store.add(Record("b", {"x": "3"}))

    def test_add_many_atomic(self):
        store = RecordStore([Record("a", {})])
        with pytest.raises(DatasetError, match="duplicate"):
            store.add_many([Record("b", {}), Record("b", {})])
        with pytest.raises(DatasetError, match="duplicate"):
            store.add_many([Record("c", {}), Record("a", {})])
        assert sorted(r.record_id for r in store) == ["a"]

    def test_allocate_id_skips_collisions(self):
        store = RecordStore([Record("r1", {}), Record("r3", {})])
        first = store.allocate_id()
        assert first == "r2"
        store.add(Record(first, {}))
        assert store.allocate_id() == "r4"
        assert store.allocate_id(prefix="q") == "q5"

    def test_snapshot_preserves_order(self):
        records = [Record(f"r{i}", {"x": str(i)}) for i in range(5)]
        store = RecordStore(records)
        store.remove("r2")
        snapshot = store.snapshot(name="snap")
        assert [r.record_id for r in snapshot] == ["r0", "r1", "r3", "r4"]
        assert snapshot.name == "snap"


class TestBuildResolver:
    def test_lsh_and_salsh(self, cora_small):
        config = PipelineConfig(attributes=("authors", "title"), seed=3)
        for sf in (None, PatternSemanticFunction(
            bibliographic_tree(), cora_patterns()
        )):
            resolver = build_resolver(cora_small, config, sf)
            source = list(cora_small)[0]
            outcome = resolver.resolve_one(_copy_with_id(source, "probe"))
            assert outcome.tier == "match"
            assert cora_small[outcome.best_id].entity_id == source.entity_id


class TestCLI:
    def test_query_round_trip(self, tmp_path, tiny_dataset, capsys):
        corpus = tmp_path / "corpus.csv"
        write_csv(tiny_dataset, corpus)
        probes = tmp_path / "probes.csv"
        with open(probes, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["record_id", "title"])
            writer.writerow(["p1", "alpha beta gamma"])
            writer.writerow(["p2", ""])
        out = tmp_path / "results.csv"
        rc = main([
            "query", "--input", str(corpus), "--queries", str(probes),
            "--technique", "lsh", "--attributes", "title",
            "--q", "2", "--k", "2", "--l", "8", "--out", str(out),
        ])
        assert rc == 0
        rows = {r["query_id"]: r for r in csv.DictReader(open(out))}
        assert rows["p1"]["tier"] == "match"
        assert rows["p1"]["best_id"] in ("t1", "t2")
        assert rows["p2"]["tier"] == "new" and rows["p2"]["best_id"] == ""

    def test_serve_batch_round_trip(self, tmp_path, tiny_dataset):
        corpus = tmp_path / "corpus.csv"
        write_csv(tiny_dataset, corpus)
        ops = tmp_path / "ops.csv"
        with open(ops, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["op", "record_id", "title"])
            writer.writerow(["query", "q1", "kappa lambda mu"])
            writer.writerow(["remove", "t7", ""])
            writer.writerow(["query", "q2", "kappa lambda mu"])
        out = tmp_path / "results.csv"
        rc = main([
            "serve-batch", "--input", str(corpus), "--ops", str(ops),
            "--technique", "lsh", "--attributes", "title",
            "--q", "2", "--k", "2", "--l", "8", "--out", str(out),
        ])
        assert rc == 0
        rows = list(csv.DictReader(open(out)))
        assert [r["query_id"] for r in rows] == ["q1", "q2"]
        assert rows[0]["tier"] == "match" and rows[0]["best_id"] == "t7"
        # t7 was removed between the two queries: its sole co-blocker
        # is gone, so the same probe now resolves as a new entity.
        assert rows[1]["tier"] == "new" and rows[1]["best_id"] == ""
