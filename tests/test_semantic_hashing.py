"""Tests for w-way AND/OR semantic hash families (§5.2)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.semantic import WWaySemanticHashFamily


def sig(*bits):
    return np.array(bits, dtype=np.uint8)


class TestConstruction:
    def test_invalid_mode(self):
        with pytest.raises(ConfigurationError):
            WWaySemanticHashFamily(4, 2, "xor", 3)

    def test_w_all_uses_every_bit(self):
        family = WWaySemanticHashFamily(5, "all", "or", 2, seed=1)
        assert family.w == 5
        assert family.chosen_bits(0) == (0, 1, 2, 3, 4)

    def test_w_out_of_range(self):
        with pytest.raises(ConfigurationError):
            WWaySemanticHashFamily(4, 5, "or", 3)
        with pytest.raises(ConfigurationError):
            WWaySemanticHashFamily(4, 0, "or", 3)

    def test_deterministic_choices(self):
        f1 = WWaySemanticHashFamily(10, 3, "or", 5, seed=9)
        f2 = WWaySemanticHashFamily(10, 3, "or", 5, seed=9)
        for table in range(5):
            assert f1.chosen_bits(table) == f2.chosen_bits(table)

    def test_tables_draw_independent_bits(self):
        family = WWaySemanticHashFamily(12, 3, "or", 20, seed=2)
        choices = {family.chosen_bits(t) for t in range(20)}
        assert len(choices) > 1  # overwhelmingly likely


class TestAndGate:
    def test_all_bits_set_passes(self):
        family = WWaySemanticHashFamily(3, 3, "and", 1, seed=0)
        assert family.gate_suffixes(0, sig(1, 1, 1)) == ("all",)

    def test_any_bit_missing_excludes(self):
        family = WWaySemanticHashFamily(3, 3, "and", 1, seed=0)
        assert family.gate_suffixes(0, sig(1, 0, 1)) == ()

    def test_pair_collides_iff_both_pass(self):
        family = WWaySemanticHashFamily(3, 3, "and", 1, seed=0)
        assert family.pair_collides(0, sig(1, 1, 1), sig(1, 1, 1))
        assert not family.pair_collides(0, sig(1, 1, 1), sig(1, 0, 1))


class TestOrGate:
    def test_suffix_per_set_bit(self):
        family = WWaySemanticHashFamily(4, "all", "or", 1, seed=0)
        assert family.gate_suffixes(0, sig(1, 0, 1, 0)) == (0, 2)

    def test_no_bits_excludes(self):
        family = WWaySemanticHashFamily(4, "all", "or", 1, seed=0)
        assert family.gate_suffixes(0, sig(0, 0, 0, 0)) == ()

    def test_pair_collides_iff_shared_bit(self):
        family = WWaySemanticHashFamily(4, "all", "or", 1, seed=0)
        assert family.pair_collides(0, sig(1, 0, 1, 0), sig(0, 0, 1, 1))
        assert not family.pair_collides(0, sig(1, 0, 0, 0), sig(0, 1, 1, 1))


class TestGateBucketEquivalence:
    """The bucket construction realises exactly the pairwise predicate."""

    @pytest.mark.parametrize("mode", ["and", "or"])
    @pytest.mark.parametrize("w", [1, 2, 3, 5])
    def test_equivalence_exhaustive_over_signatures(self, mode, w):
        num_bits = 5
        family = WWaySemanticHashFamily(num_bits, w, mode, 4, seed=13)
        signatures = [
            np.array([(value >> b) & 1 for b in range(num_bits)], dtype=np.uint8)
            for value in range(2**num_bits)
        ]
        for table in range(4):
            for s1 in signatures:
                suffixes1 = set(family.gate_suffixes(table, s1))
                for s2 in signatures:
                    suffixes2 = set(family.gate_suffixes(table, s2))
                    bucket_collision = bool(suffixes1 & suffixes2)
                    assert bucket_collision == family.pair_collides(
                        table, s1, s2
                    ), (mode, w, table, s1, s2)


class TestCollisionProbability:
    def test_matches_fig5_shape(self):
        """AND decreases with w, OR increases with w, for fixed s'."""
        for s_prime in (0.2, 0.4, 0.6, 0.8):
            and_family = [
                WWaySemanticHashFamily(16, w, "and", 1, seed=0).collision_probability(s_prime)
                for w in range(1, 8)
            ]
            or_family = [
                WWaySemanticHashFamily(16, w, "or", 1, seed=0).collision_probability(s_prime)
                for w in range(1, 8)
            ]
            assert and_family == sorted(and_family, reverse=True)
            assert or_family == sorted(or_family)

    def test_w1_and_equals_or(self):
        and_p = WWaySemanticHashFamily(8, 1, "and", 1, seed=0).collision_probability(0.5)
        or_p = WWaySemanticHashFamily(8, 1, "or", 1, seed=0).collision_probability(0.5)
        assert and_p == or_p == 0.5
