"""Tests for taxonomy trees, forests and the paper's concrete trees."""

import pytest

from repro.errors import TaxonomyError
from repro.taxonomy import TaxonomyForest, TaxonomyTree
from repro.taxonomy.builders import (
    bibliographic_tree,
    bibliographic_tree_variant,
    voter_tree,
)


def small_tree() -> TaxonomyTree:
    tree = TaxonomyTree("t")
    tree.add_root("root")
    tree.add_child("root", "a")
    tree.add_child("root", "b")
    tree.add_child("a", "a1")
    tree.add_child("a", "a2")
    return tree


class TestTreeConstruction:
    def test_two_roots_rejected(self):
        tree = TaxonomyTree("t")
        tree.add_root("r")
        with pytest.raises(TaxonomyError):
            tree.add_root("r2")

    def test_duplicate_concept_rejected(self):
        tree = small_tree()
        with pytest.raises(TaxonomyError):
            tree.add_child("root", "a")

    def test_unknown_parent_rejected(self):
        tree = small_tree()
        with pytest.raises(TaxonomyError):
            tree.add_child("ghost", "x")

    def test_from_spec_round_trip(self):
        tree = TaxonomyTree.from_spec("t", ("r", "Root", [("c", "Child", [])]))
        assert tree.root == "r"
        assert tree.children("r") == ("c",)
        assert tree.concept("c").label == "Child"

    def test_validate_passes_on_well_formed(self):
        small_tree().validate()


class TestTreeQueries:
    def test_children_and_parent(self):
        tree = small_tree()
        assert tree.children("a") == ("a1", "a2")
        assert tree.parent("a1") == "a"
        assert tree.parent("root") is None

    def test_is_leaf(self):
        tree = small_tree()
        assert tree.is_leaf("a1")
        assert not tree.is_leaf("a")

    def test_depth(self):
        tree = small_tree()
        assert tree.depth("root") == 0
        assert tree.depth("a1") == 2

    def test_ancestors(self):
        assert small_tree().ancestors("a1") == ["a", "root"]

    def test_subsumes_is_reflexive(self):
        tree = small_tree()
        assert tree.subsumes("a", "a")

    def test_subsumes_transitive_down(self):
        tree = small_tree()
        assert tree.subsumes("root", "a1")
        assert not tree.subsumes("a1", "root")

    def test_siblings_not_related(self):
        tree = small_tree()
        assert not tree.related("a", "b")
        assert tree.related("a", "a1")

    def test_leaf_set_of_leaf_is_singleton(self):
        assert small_tree().leaf_set("b") == frozenset({"b"})

    def test_leaf_set_of_internal(self):
        assert small_tree().leaf_set("a") == frozenset({"a1", "a2"})

    def test_leaves_of_root(self):
        assert small_tree().leaves == frozenset({"a1", "a2", "b"})

    def test_unknown_concept_raises(self):
        with pytest.raises(TaxonomyError):
            small_tree().leaf_set("ghost")


class TestWithoutNode:
    def test_remove_leaf(self):
        tree = small_tree().without_node("a2")
        assert not tree.has_concept("a2")
        assert tree.leaf_set("a") == frozenset({"a1"})

    def test_remove_internal_promotes_children(self):
        tree = small_tree().without_node("a")
        assert tree.parent("a1") == "root"
        assert tree.leaves == frozenset({"a1", "a2", "b"})

    def test_remove_root_rejected(self):
        with pytest.raises(TaxonomyError):
            small_tree().without_node("root")

    def test_original_unchanged(self):
        tree = small_tree()
        tree.without_node("a")
        assert tree.has_concept("a")


class TestBibliographicTree:
    def test_six_leaves(self, tbib):
        assert tbib.leaves == frozenset({"c3", "c4", "c5", "c7", "c8", "c9"})

    def test_structure_of_fig3(self, tbib):
        assert tbib.root == "c0"
        assert set(tbib.children("c0")) == {"c1", "c9"}
        assert set(tbib.children("c1")) == {"c2", "c6"}
        assert set(tbib.children("c2")) == {"c3", "c4", "c5"}
        assert set(tbib.children("c6")) == {"c7", "c8"}

    def test_variant_1_removes_peer_review_level(self):
        variant = bibliographic_tree_variant(1)
        assert not variant.has_concept("c2")
        assert not variant.has_concept("c6")
        assert variant.parent("c3") == "c1"
        assert variant.parent("c7") == "c1"
        assert variant.leaves == bibliographic_tree().leaves

    def test_variant_2_drops_book(self):
        variant = bibliographic_tree_variant(2)
        assert not variant.has_concept("c5")
        assert "c5" not in variant.leaves

    def test_variant_3_drops_journal(self):
        variant = bibliographic_tree_variant(3)
        assert not variant.has_concept("c3")

    def test_unknown_variant(self):
        with pytest.raises(TaxonomyError):
            bibliographic_tree_variant(4)


class TestVoterTree:
    def test_twelve_leaves(self, tvoter):
        assert len(tvoter.leaves) == 12

    def test_race_nodes_have_two_gender_leaves(self, tvoter):
        assert set(tvoter.children("race_w")) == {"w_m", "w_f"}

    def test_root_spans_all(self, tvoter):
        assert len(tvoter.leaf_set("v0")) == 12


class TestForest:
    def test_duplicate_concepts_across_trees_rejected(self):
        with pytest.raises(TaxonomyError):
            TaxonomyForest.of(small_tree(), small_tree())

    def test_cross_tree_not_subsumed(self, tbib, tvoter):
        forest = TaxonomyForest.of(tbib, tvoter)
        assert not forest.subsumes("c0", "v0")
        assert not forest.related("c3", "w_m")

    def test_leaf_expansion_union(self, tbib):
        forest = TaxonomyForest.of(tbib)
        assert forest.leaf_expansion({"c2", "c6"}) == frozenset(
            {"c3", "c4", "c5", "c7", "c8"}
        )

    def test_empty_forest_rejected(self):
        with pytest.raises(TaxonomyError):
            TaxonomyForest([])

    def test_unknown_concept(self, tbib):
        forest = TaxonomyForest.of(tbib)
        with pytest.raises(TaxonomyError):
            forest.leaf_set("nope")
