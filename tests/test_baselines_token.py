"""Tests for token blocking (the meta-blocking input scheme)."""

import pytest

from repro.baselines import TokenBlocker
from repro.errors import ConfigurationError
from repro.records import Dataset, Record


def make_dataset(names):
    return Dataset(
        [Record(f"r{i}", {"name": n}) for i, n in enumerate(names)]
    )


def test_shared_token_blocks_records():
    ds = make_dataset(["anna smith", "anna jones", "bob brown"])
    result = TokenBlocker(("name",)).block(ds)
    assert ("r0", "r1") in result.distinct_pairs
    assert ("r0", "r2") not in result.distinct_pairs


def test_each_token_is_a_block():
    ds = make_dataset(["a b", "a b"])
    result = TokenBlocker(("name",)).block(ds)
    # Tokens 'a' and 'b' both produce the block {r0, r1}.
    assert result.num_blocks == 2
    assert result.num_multiset_comparisons == 2  # redundant by design


def test_max_block_size_drops_stopword_blocks():
    ds = make_dataset([f"common name{i}" for i in range(10)])
    capped = TokenBlocker(("name",), max_block_size=5).block(ds)
    uncapped = TokenBlocker(("name",)).block(ds)
    assert capped.max_block_size <= 5
    assert uncapped.max_block_size == 10


def test_invalid_max_block_size():
    with pytest.raises(ConfigurationError):
        TokenBlocker(("name",), max_block_size=1)


def test_duplicate_tokens_counted_once():
    ds = make_dataset(["anna anna", "anna"])
    result = TokenBlocker(("name",)).block(ds)
    assert result.blocks == (("r0", "r1"),)
