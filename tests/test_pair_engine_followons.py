"""Pair-engine follow-ons: array connected components and the QGr
batch sub-list frontier (ROADMAP items landed with the process-sharded
runtime PR)."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.baselines import QGramBlocker
from repro.er import (
    component_labels,
    connected_components,
    connected_components_arrays,
    resolve,
)
from repro.errors import ConfigurationError
from repro.records.pairs import encode_pair_keys


class TestArrayConnectedComponents:
    def test_matches_legacy_on_random_graphs(self, voter_small):
        ids = voter_small.record_ids
        rng = random.Random(0)
        for _ in range(5):
            pairs = [
                tuple(rng.sample(ids, 2))
                for _ in range(rng.randrange(0, 400))
            ]
            assert resolve(voter_small, pairs) == resolve(
                voter_small, pairs, engine="legacy"
            )

    def test_chain_graph(self, voter_small):
        # Worst case for naive propagation: one long path component.
        ids = voter_small.record_ids
        chain = [(ids[i], ids[i + 1]) for i in range(len(ids) - 1)]
        clusters = resolve(voter_small, chain)
        assert clusters == resolve(voter_small, chain, engine="legacy")
        assert len(clusters) == 1

    def test_empty_pairs_all_singletons(self, fig1):
        clusters = resolve(fig1, [])
        assert clusters == sorted([rid] for rid in fig1.record_ids)

    def test_component_labels_roots_are_min_indices(self):
        keys = encode_pair_keys(
            np.array([0, 3, 5]), np.array([1, 4, 3])
        )
        labels = component_labels(6, keys)
        assert labels.tolist() == [0, 0, 2, 3, 3, 3]

    def test_component_labels_validates_range(self):
        keys = encode_pair_keys(np.array([0]), np.array([9]))
        with pytest.raises(ConfigurationError):
            component_labels(5, keys)

    def test_arrays_engine_direct(self):
        ids = ["r3", "r1", "r2", "r0"]
        keys = encode_pair_keys(np.array([0, 2]), np.array([1, 3]))
        clusters = connected_components_arrays(ids, keys)
        assert clusters == connected_components(ids, [("r3", "r1"), ("r2", "r0")])

    def test_bad_engine_rejected(self, fig1):
        with pytest.raises(ConfigurationError):
            resolve(fig1, [], engine="mystery")


class TestQGramFrontier:
    @pytest.mark.parametrize("threshold", [0.5, 0.7, 0.8, 0.9, 1.0])
    def test_sublists_match_legacy(self, threshold):
        blocker = QGramBlocker(("x",), q=2, threshold=threshold)
        rng = random.Random(1)
        grams_pool = ["ab", "bc", "cd", "de", "ef", "ab", "bc"]
        for _ in range(60):
            grams = tuple(
                rng.choice(grams_pool) for _ in range(rng.randrange(1, 9))
            )
            assert blocker._sublists(grams) == blocker._sublists_legacy(grams)

    def test_blocks_match_legacy_engine(self, voter_small):
        new = QGramBlocker(("first_name",), q=2, threshold=0.8).block(voter_small)
        legacy_blocker = QGramBlocker(("first_name",), q=2, threshold=0.8)
        legacy_blocker._sublists = legacy_blocker._sublists_legacy
        legacy = legacy_blocker.block(voter_small)
        # Bucket emission order depends on set iteration; the block
        # *collection* (and hence every candidate pair) must agree.
        assert {frozenset(b) for b in new.blocks} == {
            frozenset(b) for b in legacy.blocks
        }
        assert new.num_multiset_comparisons == legacy.num_multiset_comparisons
