"""Tests for the Eq. 2 blocking objective."""

import pytest

from repro.core.base import BlockingResult
from repro.errors import EvaluationError
from repro.evaluation import blocking_objective
from repro.records import Dataset, Record


def dataset():
    return Dataset(
        [
            Record("a", {}, entity_id="e1"),
            Record("b", {}, entity_id="e1"),
            Record("c", {}, entity_id="e2"),
            Record("d", {}, entity_id="e2"),
        ]
    )


def test_perfect_blocking_objective_zero_and_feasible():
    result = BlockingResult("x", (("a", "b"), ("c", "d")))
    value = blocking_objective(result, dataset(), epsilon=0.0)
    assert value.non_match_share == 0.0
    assert value.match_loss == 0.0
    assert value.feasible


def test_impure_blocking_has_positive_objective():
    result = BlockingResult("x", (("a", "b", "c", "d"),))
    value = blocking_objective(result, dataset(), epsilon=0.1)
    assert value.non_match_share == pytest.approx(4 / 6)
    assert value.feasible  # PC = 1


def test_lossy_blocking_infeasible_below_epsilon():
    result = BlockingResult("x", (("a", "b"),))  # loses (c, d)
    value = blocking_objective(result, dataset(), epsilon=0.25)
    assert value.match_loss == 0.5
    assert not value.feasible
    relaxed = blocking_objective(result, dataset(), epsilon=0.5)
    assert relaxed.feasible


def test_empty_blocking_infeasible():
    value = blocking_objective(BlockingResult("x", ()), dataset(), epsilon=0.1)
    assert value.match_loss == 1.0
    assert not value.feasible
    assert value.non_match_share == 0.0


def test_invalid_epsilon():
    with pytest.raises(EvaluationError):
        blocking_objective(BlockingResult("x", ()), dataset(), epsilon=1.5)


def test_objective_prefers_salsh_over_lsh(cora_small):
    """The SA-LSH gate lowers the Eq. 2 objective at similar loss —
    the formal version of the paper's PQ claim."""
    from repro.core import LSHBlocker, SALSHBlocker
    from repro.semantic import PatternSemanticFunction, cora_patterns
    from repro.taxonomy.builders import bibliographic_tree

    sf = PatternSemanticFunction(bibliographic_tree(), cora_patterns())
    lsh = LSHBlocker(("authors", "title"), q=3, k=3, l=19, seed=5)
    salsh = SALSHBlocker(
        ("authors", "title"), q=3, k=3, l=19, seed=5,
        semantic_function=sf, w="all", mode="or",
    )
    obj_lsh = blocking_objective(lsh.block(cora_small), cora_small, 0.2)
    obj_salsh = blocking_objective(salsh.block(cora_small), cora_small, 0.2)
    assert obj_salsh.non_match_share <= obj_lsh.non_match_share
