"""Persistent shard pool: reuse determinism and slab transport
(DESIGN.md, "Persistent shard pool").

The pool extends the process-sharded contract across calls: repeated
``block()``/``block_stream()`` calls on one warm pool — and interleaved
blockers sharing it — must produce byte-identical blocks, equal to the
serial engine for any pool size; a closed pool must fail loudly with
:class:`~repro.errors.ConfigurationError` instead of silently
re-forking.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    LSHBlocker,
    LSHForestBlocker,
    MultiProbeLSHBlocker,
    SALSHBlocker,
)
from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.errors import ConfigurationError
from repro.minhash import GrowableSignatureSpill
from repro.records import Dataset
from repro.semantic import VoterSemanticFunction
from repro.utils.parallel import (
    ShardPool,
    _available_cpus,
    effective_processes,
    map_processes,
    resolve_processes,
    resolve_workers,
)

VOTER_ATTRS = ("first_name", "last_name")


def _double(x):
    return 2 * x


def _sum_and_scale(payload):
    array, factor = payload
    return float(array.sum()), array * factor


def _scale_or_raise(payload):
    array, should_raise = payload
    if should_raise:
        raise ValueError("bad payload")
    return array * 2


def _lsh(**kw):
    return LSHBlocker(VOTER_ATTRS, q=2, k=4, l=6, seed=3, **kw)


def _salsh(**kw):
    return SALSHBlocker(
        VOTER_ATTRS, q=2, k=4, l=6, seed=3,
        semantic_function=VoterSemanticFunction(), w=2, mode="or", **kw,
    )


class TestPoolPrimitives:
    def test_map_matches_serial(self):
        payloads = list(range(17))
        with ShardPool(2) as pool:
            assert pool.map(_double, payloads) == [2 * x for x in payloads]
        assert map_processes(_double, payloads, processes=1) == [
            2 * x for x in payloads
        ]

    def test_map_empty_and_single(self):
        with ShardPool(3) as pool:
            assert pool.map(_double, []) == []
            assert pool.map(_double, [21]) == [42]

    def test_serial_pool_runs_in_process(self):
        # processes=1 never forks: identity of mutated state proves it.
        with ShardPool(1) as pool:
            box: list[int] = []
            assert pool.map(box.append, [1, 2]) == [None, None]
            assert box == [1, 2]

    def test_slab_transport_round_trip(self):
        # Arrays above the slab threshold ride shared-memory files and
        # come back value-identical (as read-only maps).
        big = np.arange(20_000, dtype=np.uint64).reshape(100, 200)
        payloads = [(big, 2), (big[:50], 3)]
        serial = [_sum_and_scale(p) for p in payloads]
        with ShardPool(2) as pool:
            pooled = pool.map(_sum_and_scale, payloads)
        for (serial_sum, serial_array), (pool_sum, pool_array) in zip(
            serial, pooled
        ):
            assert serial_sum == pool_sum
            assert np.array_equal(np.asarray(pool_array), serial_array)

    def test_map_processes_pool_takes_precedence(self):
        with ShardPool(2) as pool:
            assert map_processes(_double, [1, 2, 3], processes=7, pool=pool) == [
                2, 4, 6,
            ]

    def test_failed_map_cleans_slab_dir(self):
        # A map where one task raises must propagate the error AND
        # unlink the completed tasks' result slab files — a long-lived
        # pool must not strand tmpfs files on failures.
        import os

        big = np.arange(20_000, dtype=np.uint64).reshape(100, 200)
        with ShardPool(2) as pool:
            with pytest.raises(ValueError, match="bad payload"):
                pool.map(
                    _scale_or_raise, [(big, False), (big, True), (big, False)]
                )
            assert os.listdir(pool._slab_dir) == []
            # The pool stays usable after a failed map.
            ok = pool.map(_scale_or_raise, [(big, False), (big, False)])
            assert all(np.array_equal(np.asarray(r), big * 2) for r in ok)

    def test_unpicklable_payload_cleans_slab_dir(self):
        # A payload that fails to pickle AFTER an earlier payload's
        # array was parked must still leave the slab dir empty.
        import os

        big = np.arange(20_000, dtype=np.uint64).reshape(100, 200)
        with ShardPool(2) as pool:
            with pytest.raises(Exception):
                pool.map(_sum_and_scale, [(big, 2), (big, lambda x: x)])
            assert os.listdir(pool._slab_dir) == []

    def test_dead_corpus_releases_interned_files(self, voter_small):
        import gc
        import os

        with ShardPool(2) as pool:
            corpus = list(voter_small)[:50]

            class Source:  # weakref-able anchor for the slabs
                pass

            source = Source()
            pool.intern_slabs(source, 2, [corpus[:25], corpus[25:]])
            assert any(
                name.startswith("intern-")
                for name in os.listdir(pool._slab_dir)
            )
            del source
            gc.collect()
            assert not any(
                name.startswith("intern-")
                for name in os.listdir(pool._slab_dir)
            )

    def test_closed_pool_raises(self):
        pool = ShardPool(2)
        pool.close()
        assert pool.closed
        with pytest.raises(ConfigurationError, match="closed"):
            pool.map(_double, [1, 2])
        pool.close()  # idempotent

    def test_effective_processes(self):
        with ShardPool(3) as pool:
            assert effective_processes(1, pool) == 3
            assert effective_processes(None, pool) == 3
        assert effective_processes(2) == 2

    def test_memo_capacity_bounded(self, voter_small):
        # Identity-keyed memo writers (e.g. a semantic function rebuilt
        # per call) must not grow the per-source memo unboundedly.
        with ShardPool(2) as pool:
            for i in range(20):
                pool.set_memo(voter_small, ("key", i), i)
            assert pool.get_memo(voter_small, ("key", 0)) is None  # evicted
            assert pool.get_memo(voter_small, ("key", 19)) == 19

    def test_interned_slab_lookup(self, voter_small):
        with ShardPool(2) as pool:
            assert pool.get_interned_slabs(voter_small, 2) is None
            refs = pool.intern_slabs(voter_small, 2, [[1, 2], [3]])
            assert pool.get_interned_slabs(voter_small, 2) == refs
            assert pool.get_interned_slabs(voter_small, 3) is None
        with ShardPool(1) as serial:
            # Serial pools neither intern nor report cached slabs.
            assert serial.intern_slabs(voter_small, 1, [[1]]) == [[1]]
            assert serial.get_interned_slabs(voter_small, 1) is None

    def test_resolve_respects_cpu_budget(self):
        # None defaults must track the usable-CPU count (cgroup/affinity
        # aware), not blindly the machine's cpu_count.
        assert resolve_workers(None) == _available_cpus()
        assert resolve_processes(None) == _available_cpus()
        assert _available_cpus() >= 1


class TestPoolReuseDeterminism:
    def test_repeated_block_calls_identical(self, voter_small):
        serial = _lsh().block(voter_small)
        with ShardPool(2) as pool:
            first = _lsh(pool=pool).block(voter_small)
            second = _lsh(pool=pool).block(voter_small)
        assert first.blocks == serial.blocks
        assert second.blocks == serial.blocks
        assert first.metadata["pooled"] is True

    @pytest.mark.parametrize("pool_size", [1, 2, 3])
    def test_any_pool_size_matches_serial(self, voter_small, pool_size):
        serial = _lsh().block(voter_small)
        with ShardPool(pool_size) as pool:
            assert _lsh(pool=pool).block(voter_small).blocks == serial.blocks

    def test_interleaved_blockers_share_one_pool(self, voter_small):
        lsh_serial = _lsh().block(voter_small)
        salsh_serial = _salsh().block(voter_small)
        with ShardPool(2) as pool:
            lsh_first = _lsh(pool=pool).block(voter_small)
            salsh_pooled = _salsh(pool=pool).block(voter_small)
            lsh_second = _lsh(pool=pool).block(voter_small)
        assert lsh_first.blocks == lsh_second.blocks == lsh_serial.blocks
        assert salsh_pooled.blocks == salsh_serial.blocks
        assert salsh_pooled.metadata["engine"] == "sharded"

    def test_variant_blockers_on_pool(self, voter_small):
        for make in (
            lambda **kw: MultiProbeLSHBlocker(
                VOTER_ATTRS, q=2, k=3, l=4, seed=5, **kw
            ),
            lambda **kw: LSHForestBlocker(
                VOTER_ATTRS, q=2, k=4, l=3, seed=5, max_block_size=10, **kw
            ),
        ):
            serial = make().block(voter_small)
            with ShardPool(2) as pool:
                assert make(pool=pool).block(voter_small).blocks == serial.blocks

    def test_salsh_semantic_memo_on_pool(self, voter_small):
        # Warm repeat calls reuse the pool's memoised encoder/semhash
        # state (pure functions of sf + corpus); a different semantic
        # function object or corpus must miss the memo. Blocks stay
        # identical throughout.
        sf1, sf2 = VoterSemanticFunction(), VoterSemanticFunction()
        mk = lambda sf, **kw: SALSHBlocker(
            VOTER_ATTRS, q=2, k=4, l=6, seed=3,
            semantic_function=sf, w=2, mode="or", **kw,
        )
        serial = mk(sf1).block(voter_small)
        with ShardPool(2) as pool:
            miss = mk(sf1, pool=pool).block(voter_small)
            assert pool.get_memo(
                voter_small, ("salsh-semantic", sf1)
            ) is not None
            assert pool.get_memo(
                voter_small, ("salsh-semantic", sf2)
            ) is None
            hit = mk(sf1, pool=pool).block(voter_small)
            other_sf = mk(sf2, pool=pool).block(voter_small)
        assert miss.blocks == hit.blocks == serial.blocks
        assert other_sf.blocks == serial.blocks
        # The memoised call reports no semantic-function rebuild time.
        assert hit.metadata["sf_seconds"] == 0.0
        assert miss.metadata["sf_seconds"] > 0.0

    def test_block_stream_on_pool(self, tmp_path, voter_small):
        serial = _lsh().block(voter_small)
        records = list(voter_small)
        slabs = [records[i : i + 111] for i in range(0, len(records), 111)]
        with ShardPool(2) as pool:
            blocker = _lsh(pool=pool)
            first = blocker.block_stream(iter(slabs))
            spill = GrowableSignatureSpill(tmp_path / "pooled.npy", 4 * 6)
            second = blocker.block_stream(iter(slabs), signatures_out=spill)
            spill.finalize()
        assert first.blocks == serial.blocks
        assert second.blocks == serial.blocks
        assert first.metadata["pooled"] is True

    def test_pipeline_on_pool(self, voter_small):
        serial = run_pipeline(
            voter_small,
            PipelineConfig(attributes=VOTER_ATTRS, q=2),
            VoterSemanticFunction(),
        )
        with ShardPool(2) as pool:
            pooled = run_pipeline(
                voter_small,
                PipelineConfig(attributes=VOTER_ATTRS, q=2, pool=pool),
                VoterSemanticFunction(),
            )
        assert pooled.outcome.result.blocks == serial.outcome.result.blocks

    def test_pool_shutdown_mid_pipeline_raises(self, voter_small):
        pool = ShardPool(2)
        blocker = _lsh(pool=pool)
        assert blocker.block(voter_small).blocks  # pool is live
        pool.close()
        with pytest.raises(ConfigurationError, match="closed"):
            blocker.block(voter_small)


class TestEmptyCorpus:
    """``record_slabs([], n)`` yields zero payloads; every blocker must
    degrade to empty blocks, not crash — sharded and pooled alike."""

    def _makers(self):
        sf = VoterSemanticFunction()
        return [
            lambda **kw: LSHBlocker(("a",), q=2, k=3, l=5, **kw),
            lambda **kw: SALSHBlocker(
                ("a",), q=2, k=3, l=5, semantic_function=sf, **kw
            ),
            lambda **kw: MultiProbeLSHBlocker(("a",), q=2, k=3, l=5, **kw),
            lambda **kw: LSHForestBlocker(("a",), q=2, k=3, l=5, **kw),
        ]

    def test_empty_blocks_sharded(self):
        empty = Dataset([])
        for make in self._makers():
            assert make().block(empty).blocks == ()
            assert make(processes=2).block(empty).blocks == ()

    def test_empty_blocks_on_warm_pool(self, voter_small):
        empty = Dataset([])
        with ShardPool(2) as pool:
            # Warm the pool first so the empty-corpus path hits a live
            # executor, not a lazily unforked one.
            assert _lsh(pool=pool).block(voter_small).blocks
            for make in self._makers():
                assert make(pool=pool).block(empty).blocks == ()
