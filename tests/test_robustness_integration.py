"""Integration tests for γ-robustness on generated corpora (§3, §6.1).

The paper chooses q per dataset "following the principle of deciding
γ-robustness": a similarity metric is useful for blocking when higher
similarity reliably means higher match probability. These tests build
the empirical match-probability curve on labelled pairs and check that
q-gram Jaccard is robust on our corpora.
"""

from __future__ import annotations

import pytest

from repro.core.robustness import estimate_gamma, match_probability_curve
from repro.minhash import Shingler
from repro.utils.rand import rng_from_seed


def labelled_similarities(dataset, attributes, q, *, num_non_matches=2000):
    """(similarity, is_match) samples: all true matches + random non-matches."""
    shingler = Shingler(attributes, q=q)
    samples = []
    for id1, id2 in sorted(dataset.true_matches)[:2000]:
        samples.append((shingler.jaccard(dataset[id1], dataset[id2]), True))
    rng = rng_from_seed(31, "robustness", dataset.name, q)
    ids = dataset.record_ids
    produced = 0
    while produced < num_non_matches:
        id1, id2 = rng.choice(ids), rng.choice(ids)
        if id1 == id2 or dataset.is_true_match(id1, id2):
            continue
        samples.append((shingler.jaccard(dataset[id1], dataset[id2]), False))
        produced += 1
    return samples


@pytest.mark.parametrize("q", [2, 3, 4])
def test_qgram_jaccard_is_robust_on_cora(cora_small, q):
    samples = labelled_similarities(cora_small, ("authors", "title"), q)
    curve = match_probability_curve(samples, num_bins=10)
    gamma = estimate_gamma(curve, tolerance=0.05, min_count=10)
    # Blocking needs a healthily robust metric: monotone except
    # possibly between nearby bins.
    assert gamma >= 0.7, (q, gamma)


def test_match_probability_increases_with_similarity(voter_small):
    samples = labelled_similarities(voter_small, ("first_name", "last_name"), 2)
    curve = match_probability_curve(samples, num_bins=5)
    populated = [b for b in curve if b.count >= 10]
    assert populated[-1].match_probability >= populated[0].match_probability


def test_gamma_estimate_reflects_metric_quality(cora_small):
    """A degenerate metric (constant similarity) is vacuously robust but
    the curve shows it carries no signal; a real metric separates the
    top bin from the bottom bin."""
    samples = labelled_similarities(cora_small, ("authors", "title"), 4)
    curve = match_probability_curve(samples, num_bins=10)
    populated = [b for b in curve if b.count >= 20]
    spread = (
        populated[-1].match_probability - populated[0].match_probability
    )
    assert spread > 0.5
