"""Tests for shingling and minhash signatures."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.minhash import MinHasher, Shingler, build_signature_matrix
from repro.records import Dataset, Record


def record(rid, title, authors=""):
    return Record(rid, {"title": title, "authors": authors})


class TestShingler:
    def test_basic_qgrams(self):
        shingler = Shingler(("title",), q=3)
        grams = shingler.shingles(record("r", "abcd"))
        assert grams == frozenset({"abc", "bcd"})

    def test_multiple_attributes_union(self):
        shingler = Shingler(("title", "authors"), q=3)
        grams = shingler.shingles(record("r", "abc", "xyz"))
        assert grams == frozenset({"abc", "xyz"})

    def test_normalisation_applied(self):
        shingler = Shingler(("title",), q=3)
        assert shingler.shingles(record("r", "A-B-C")) == shingler.shingles(
            record("r2", "a b c")
        )

    def test_exact_value_mode(self):
        shingler = Shingler(("title", "authors"), q=None)
        grams = shingler.shingles(record("r", "The Title", "Some One"))
        assert grams == frozenset({"title=the title", "authors=some one"})

    def test_missing_attribute_ignored(self):
        shingler = Shingler(("title", "authors"), q=2)
        assert shingler.shingles(record("r", "ab")) == frozenset({"ab"})

    def test_empty_record_yields_empty(self):
        shingler = Shingler(("title",), q=2)
        assert shingler.shingles(record("r", "")) == frozenset()

    def test_requires_attributes(self):
        with pytest.raises(ConfigurationError):
            Shingler((), q=2)

    def test_invalid_q(self):
        with pytest.raises(ConfigurationError):
            Shingler(("title",), q=0)

    def test_shingle_ids_stable_multiset(self):
        """Ids are a deterministic multiset; order is unspecified
        (minhash minima are order-invariant, so no sort is performed)."""
        shingler = Shingler(("title",), q=2)
        ids1 = shingler.shingle_ids(record("r", "wang qing"))
        ids2 = shingler.shingle_ids(record("s", "wang qing"))
        assert np.array_equal(np.sort(ids1), np.sort(ids2))
        assert ids1.dtype == np.uint64

    def test_jaccard_identical_and_disjoint(self):
        shingler = Shingler(("title",), q=2)
        assert shingler.jaccard(record("a", "wang"), record("b", "wang")) == 1.0
        assert shingler.jaccard(record("a", "ab"), record("b", "xy")) == 0.0

    def test_jaccard_both_empty_is_one(self):
        shingler = Shingler(("title",), q=2)
        assert shingler.jaccard(record("a", ""), record("b", "")) == 1.0


class TestMinHasher:
    def test_invalid_num_hashes(self):
        with pytest.raises(ConfigurationError):
            MinHasher(0)

    def test_signature_length(self):
        hasher = MinHasher(32, seed=1)
        shingler = Shingler(("title",), q=2)
        sig = hasher.signature(shingler.shingle_ids(record("r", "hello world")))
        assert sig.shape == (32,)

    def test_same_input_same_signature(self):
        hasher = MinHasher(16, seed=2)
        shingler = Shingler(("title",), q=2)
        ids = shingler.shingle_ids(record("r", "entity resolution"))
        assert np.array_equal(hasher.signature(ids), hasher.signature(ids))

    def test_estimate_jaccard_bounds(self):
        hasher = MinHasher(64, seed=3)
        shingler = Shingler(("title",), q=2)
        s1 = hasher.signature(shingler.shingle_ids(record("a", "blocking")))
        s2 = hasher.signature(shingler.shingle_ids(record("b", "blocking!")))
        assert 0.0 <= hasher.estimate_jaccard(s1, s2) <= 1.0

    def test_estimate_jaccard_mismatched_shapes(self):
        hasher = MinHasher(4, seed=0)
        with pytest.raises(ValueError):
            hasher.estimate_jaccard(np.zeros(4, np.uint64), np.zeros(5, np.uint64))

    def test_identical_shingles_identical_signatures(self):
        """Prop 5.2(1): simJ = 1 implies collision probability 1."""
        hasher = MinHasher(128, seed=4)
        shingler = Shingler(("title",), q=3)
        s1 = hasher.signature(shingler.shingle_ids(record("a", "Qing Wang")))
        s2 = hasher.signature(shingler.shingle_ids(record("b", "qing wang!")))
        assert np.array_equal(s1, s2)

    def test_signature_accuracy_on_known_jaccard(self):
        """Minhash agreement approximates the true Jaccard (within CLT)."""
        hasher = MinHasher(1024, seed=5)
        shingler = Shingler(("title",), q=2)
        r1 = record("a", "the cascade correlation learning architecture")
        r2 = record("b", "cascade correlation learning architecture")
        true = shingler.jaccard(r1, r2)
        estimate = hasher.estimate_jaccard(
            hasher.signature(shingler.shingle_ids(r1)),
            hasher.signature(shingler.shingle_ids(r2)),
        )
        assert estimate == pytest.approx(true, abs=0.06)

    def test_empty_records_collide_with_each_other_only(self):
        hasher = MinHasher(8, seed=6)
        shingler = Shingler(("title",), q=2)
        empty1 = hasher.signature(shingler.shingle_ids(record("a", "")))
        empty2 = hasher.signature(shingler.shingle_ids(record("b", "")))
        full = hasher.signature(shingler.shingle_ids(record("c", "text")))
        assert np.array_equal(empty1, empty2)
        assert not np.array_equal(empty1, full)


class TestSignatureMatrix:
    def test_build_matrix_shape_and_rows(self):
        ds = Dataset([record("a", "alpha"), record("b", "beta")])
        shingler = Shingler(("title",), q=2)
        hasher = MinHasher(8, seed=1)
        matrix = build_signature_matrix(ds, shingler, hasher)
        assert matrix.num_records == 2
        assert matrix.num_hashes == 8
        expected = hasher.signature(shingler.shingle_ids(ds["a"]))
        assert np.array_equal(matrix.row("a"), expected)
