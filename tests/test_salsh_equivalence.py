"""Brute-force validation of the SA-LSH bucket construction.

The paper defines SA-LSH *pairwise*: records r1, r2 co-block iff some
hash table's band key agrees AND the table's w-way semantic hash
function fires for the pair (§5.2). The blocker implements this with
per-record bucket insertion in O(n). These tests rebuild the pipeline
component-by-component (same seeds) and check the candidate-pair set
against the quadratic reference — on the Fig. 1 example and on a
generated corpus, for both µ modes and several w.
"""

from __future__ import annotations

import pytest

from repro.core import SALSHBlocker
from repro.datasets import CoraLikeGenerator, fig1_dataset, fig1_semantic_function
from repro.lsh.bands import split_bands
from repro.minhash import MinHasher, Shingler
from repro.records import Dataset
from repro.records.ground_truth import sorted_pair
from repro.semantic import (
    PatternSemanticFunction,
    SemhashEncoder,
    WWaySemanticHashFamily,
    cora_patterns,
)
from repro.taxonomy.builders import bibliographic_tree


def brute_force_pairs(dataset: Dataset, blocker: SALSHBlocker) -> frozenset:
    """Quadratic reference implementation of §5.2's pairwise rule."""
    shingler = Shingler(blocker.attributes, q=blocker.q)
    hasher = MinHasher(num_hashes=blocker.k * blocker.l, seed=blocker.seed)
    encoder = SemhashEncoder(blocker.semantic_function, dataset)
    gates = WWaySemanticHashFamily(
        num_bits=encoder.num_bits,
        w=blocker.w,
        mode=blocker.mode,
        num_tables=blocker.l,
        seed=blocker.seed,
    )

    bands = {}
    semhash = {}
    for record in dataset:
        signature = hasher.signature(shingler.shingle_ids(record))
        bands[record.record_id] = split_bands(signature, blocker.k, blocker.l)
        semhash[record.record_id] = encoder.encode(record)

    ids = dataset.record_ids
    pairs = set()
    for i, id1 in enumerate(ids):
        for id2 in ids[i + 1 :]:
            for table in range(blocker.l):
                if bands[id1][table] != bands[id2][table]:
                    continue
                if gates.pair_collides(table, semhash[id1], semhash[id2]):
                    pairs.add(sorted_pair(id1, id2))
                    break
    return frozenset(pairs)


@pytest.mark.parametrize("mode,w", [("or", "all"), ("or", 2), ("and", 1), ("and", 2)])
def test_equivalence_on_fig1(mode, w):
    dataset = fig1_dataset()
    blocker = SALSHBlocker(
        ("title", "authors"), q=2, k=2, l=8, seed=17,
        semantic_function=fig1_semantic_function(), w=w, mode=mode,
    )
    assert blocker.block(dataset).distinct_pairs == brute_force_pairs(
        dataset, blocker
    )


@pytest.mark.parametrize("mode,w", [("or", "all"), ("or", 3), ("and", 2)])
def test_equivalence_on_generated_corpus(mode, w):
    dataset = CoraLikeGenerator(num_records=120, num_entities=25, seed=9).generate()
    semantic_function = PatternSemanticFunction(
        bibliographic_tree(), cora_patterns()
    )
    blocker = SALSHBlocker(
        ("authors", "title"), q=3, k=2, l=5, seed=23,
        semantic_function=semantic_function, w=w, mode=mode,
    )
    assert blocker.block(dataset).distinct_pairs == brute_force_pairs(
        dataset, blocker
    )
