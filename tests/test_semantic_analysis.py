"""Tests for semantic-feature quality analysis and gate recommendation."""

import pytest

from repro.semantic import PatternSemanticFunction, VoterSemanticFunction, cora_patterns
from repro.semantic.analysis import (
    SemanticFeatureQuality,
    analyse_semantic_features,
    recommend_gate,
)
from repro.records import Dataset, Record
from repro.semantic.interpretation import CallableSemanticFunction
from repro.taxonomy.builders import bibliographic_tree


def clean_dataset(tbib):
    """Two entities whose duplicates carry identical clean semantics."""
    records = [
        Record("a1", {"kind": "journal"}, entity_id="e1"),
        Record("a2", {"kind": "journal"}, entity_id="e1"),
        Record("b1", {"kind": "techreport"}, entity_id="e2"),
        Record("b2", {"kind": "techreport"}, entity_id="e2"),
    ]
    fn = CallableSemanticFunction(
        tbib, lambda r: ("c3",) if r.get("kind") == "journal" else ("c7",)
    )
    return Dataset(records), fn


def noisy_dataset(tbib):
    """Duplicates whose semantics disagree entirely (simS = 0)."""
    records = [
        Record("a1", {"kind": "journal"}, entity_id="e1"),
        Record("a2", {"kind": "techreport"}, entity_id="e1"),
        Record("b1", {"kind": "journal"}, entity_id="e2"),
        Record("b2", {"kind": "techreport"}, entity_id="e2"),
    ]
    fn = CallableSemanticFunction(
        tbib, lambda r: ("c3",) if r.get("kind") == "journal" else ("c7",)
    )
    return Dataset(records), fn


class TestAnalysis:
    def test_clean_features(self, tbib):
        dataset, fn = clean_dataset(tbib)
        quality = analyse_semantic_features(dataset, fn)
        assert quality.noise_rate == 0.0
        assert quality.uncertainty_rate == 0.0
        assert quality.heterogeneity_rate == 0.0
        assert quality.is_clean

    def test_noisy_features(self, tbib):
        dataset, fn = noisy_dataset(tbib)
        quality = analyse_semantic_features(dataset, fn)
        assert quality.noise_rate == 1.0
        assert not quality.is_clean

    def test_uncertainty_counts_wide_interpretations(self, tbib):
        records = [Record("x", {}, entity_id="e")]
        fn = CallableSemanticFunction(tbib, lambda r: ("c1",))  # 5 leaves
        quality = analyse_semantic_features(Dataset(records), fn)
        assert quality.uncertainty_rate == 1.0

    def test_cora_features_measurably_noisy(self, cora_small, tbib):
        fn = PatternSemanticFunction(tbib, cora_patterns())
        quality = analyse_semantic_features(cora_small, fn)
        # Pattern noise is injected by the generator (§6.3.2's premise).
        assert quality.noise_rate > 0.0
        assert not quality.is_clean

    def test_voter_features_uncertain_not_noisy(self, voter_small):
        quality = analyse_semantic_features(voter_small, VoterSemanticFunction())
        # 'u' values widen interpretations but rarely zero out simS.
        assert quality.uncertainty_rate > 0.05
        assert quality.noise_rate < 0.05


class TestRecommendation:
    def test_clean_features_get_and(self):
        quality = SemanticFeatureQuality(0.0, 0.0, 0.0, 100, 100)
        mode, w = recommend_gate(quality, num_bits=5)
        assert mode == "and"
        assert w == 2

    def test_heavy_defects_get_or_all(self):
        quality = SemanticFeatureQuality(0.4, 0.1, 0.2, 100, 100)
        mode, w = recommend_gate(quality, num_bits=12)
        assert (mode, w) == ("or", "all")

    def test_moderate_defects_get_or_half(self):
        quality = SemanticFeatureQuality(0.1, 0.1, 0.15, 100, 100)
        mode, w = recommend_gate(quality, num_bits=12)
        assert mode == "or"
        assert isinstance(w, int) and w >= 6

    def test_paper_regimes(self, cora_small, voter_small, tbib):
        """Cora's noisy features and NC Voter's uncertain features both
        end up with OR gates, matching §6.2/§6.3."""
        cora_fn = PatternSemanticFunction(tbib, cora_patterns())
        cora_quality = analyse_semantic_features(cora_small, cora_fn)
        assert recommend_gate(cora_quality, 5)[0] == "or"

        voter_quality = analyse_semantic_features(
            voter_small, VoterSemanticFunction()
        )
        assert recommend_gate(voter_quality, 12)[0] == "or"
