"""Subprocess driver for the kill −9 crash matrix.

Run as ``python durability_driver.py <state_dir> <kind> <corpus>`` with
``REPRO_FAULTS`` optionally arming a crash point (see
:func:`repro.utils.faults.arm_from_env`). The driver builds a durable
resolver over the first half of the corpus, then applies a fixed op
schedule — :func:`plan` — printing a flushed ``ACK <i>`` line after
each *applied* operation. The parent test recomputes the same schedule,
counts the ACK lines the killed process got out, and asserts the
recovered resolver equals a from-scratch rebuild of exactly the
acknowledged prefix.

The module doubles as a library: the test imports :func:`load_corpus`,
:func:`make_blocker` and :func:`plan` so driver and oracle can never
drift apart.
"""

from __future__ import annotations

import sys

from repro.core import (
    LSHBlocker,
    LSHForestBlocker,
    MultiProbeLSHBlocker,
    SALSHBlocker,
)
from repro.datasets import (
    CoraLikeGenerator,
    fig1_dataset,
    fig1_semantic_function,
)
from repro.er import Resolver
from repro.semantic import PatternSemanticFunction, cora_patterns
from repro.taxonomy.builders import bibliographic_tree
from repro.utils import faults

#: Per-corpus blocker parameters (mirrors test_incremental_index).
PARAMS = {
    "fig1": dict(attrs=("title", "authors"), q=3, k=2, l=3, seed=1),
    "cora": dict(attrs=("authors", "title"), q=3, k=3, l=6, seed=3),
}


def load_corpus(name: str) -> list:
    if name == "fig1":
        return list(fig1_dataset())
    if name == "cora":
        return list(
            CoraLikeGenerator(
                num_records=40, num_entities=8, seed=5
            ).generate()
        )
    raise ValueError(f"unknown corpus {name!r}")


def make_blocker(kind: str, corpus: str):
    params = PARAMS[corpus]
    base = dict(
        q=params["q"], k=params["k"], l=params["l"], seed=params["seed"]
    )
    attrs = params["attrs"]
    if kind == "lsh":
        return LSHBlocker(attrs, **base)
    if kind == "salsh":
        function = (
            fig1_semantic_function()
            if corpus == "fig1"
            else PatternSemanticFunction(
                bibliographic_tree(), cora_patterns()
            )
        )
        return SALSHBlocker(
            attrs,
            semantic_function=function,
            w="all" if corpus == "fig1" else 2,
            mode="or",
            **base,
        )
    if kind == "mplsh":
        return MultiProbeLSHBlocker(attrs, **base)
    if kind == "forest":
        return LSHForestBlocker(attrs, **base)
    raise ValueError(f"unknown blocker kind {kind!r}")


def plan(records: list) -> tuple[list, list]:
    """``(seed_records, ops)`` — the fixed schedule both sides replay.

    Ops are ``("add", record)``, ``("remove", record_id)`` and
    ``("save", None)`` tuples; saves checkpoint mid-run so the crash
    matrix exercises recovery that combines a non-initial checkpoint
    with a journal tail.
    """
    half = len(records) // 2
    seed, rest = records[:half], records[half:]
    ops: list = []
    for position, record in enumerate(rest):
        ops.append(("add", record))
        if position == 1:
            ops.append(("remove", seed[0].record_id))
        if position == 2:
            ops.append(("save", None))
    ops.append(("remove", rest[0].record_id))
    return seed, ops


def apply_op(resolver: Resolver, op: str, arg) -> None:
    if op == "add":
        resolver.add(arg)
    elif op == "remove":
        resolver.remove(arg)
    elif op == "save":
        resolver.save()
    else:
        raise ValueError(f"unknown op {op!r}")


def main(argv: list[str]) -> int:
    state_dir, kind, corpus = argv
    faults.arm_from_env()
    records = load_corpus(corpus)
    seed, ops = plan(records)
    resolver = Resolver(make_blocker(kind, corpus), seed, state_dir=state_dir)
    print("READY", flush=True)
    for index, (op, arg) in enumerate(ops):
        apply_op(resolver, op, arg)
        print(f"ACK {index}", flush=True)
    resolver.close()
    print("DONE", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
