"""Tests for the parameter-grid registry (the paper's 163 settings)."""

import pytest

from repro.baselines import (
    TECHNIQUE_ORDER,
    iter_parameter_grid,
    make_blockers,
    paper_grid_sizes,
)
from repro.errors import ConfigurationError

#: Grid sizes claimed in the paper's Table 3.
PAPER_SIZES = {
    "TBlo": 1, "SorA": 5, "SorII": 5, "ASor": 8, "QGr": 4, "CaTh": 8,
    "CaNN": 8, "StMT": 32, "StMNN": 32, "SuA": 6, "SuAS": 6, "RSuA": 48,
}


def test_total_settings_is_163():
    sizes = paper_grid_sizes()
    assert sum(sizes.values()) == 163


@pytest.mark.parametrize("technique,expected", sorted(PAPER_SIZES.items()))
def test_per_technique_grid_size(technique, expected):
    assert paper_grid_sizes()[technique] == expected


def test_technique_order_matches_table3():
    assert TECHNIQUE_ORDER == (
        "TBlo", "SorA", "SorII", "ASor", "QGr", "CaTh",
        "CaNN", "StMT", "StMNN", "SuA", "SuAS", "RSuA",
    )


def test_unknown_technique_raises():
    with pytest.raises(ConfigurationError):
        list(iter_parameter_grid("LSHish", ("a",)))


def test_every_setting_has_distinct_description():
    for technique in TECHNIQUE_ORDER:
        descriptions = [
            blocker.describe()
            for blocker in iter_parameter_grid(technique, ("name",))
        ]
        assert len(descriptions) == len(set(descriptions)), technique


def test_make_blockers_truncation():
    grids = make_blockers(("name",), max_settings=2)
    assert all(len(blockers) <= 2 for blockers in grids.values())
    assert len(grids["RSuA"]) == 2


def test_make_blockers_subset_of_techniques():
    grids = make_blockers(("name",), techniques=("TBlo", "SuA"))
    assert set(grids) == {"TBlo", "SuA"}


def test_all_blockers_carry_correct_names():
    grids = make_blockers(("name",), max_settings=1)
    for technique, blockers in grids.items():
        assert blockers[0].name == technique
