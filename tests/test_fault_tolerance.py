"""Fault tolerance of the parallel runtime (DESIGN.md, "Fault
tolerance & the degradation ladder").

The central claim under test: for every injected fault — a killed
worker, a silently truncated slab, a full slab directory, a hung task
— a pooled blocking run produces blocks *byte-identical* to the serial
engine, the pool stays usable afterwards, and no files are stranded in
the slab directory. The deterministic :class:`~repro.utils.faults.
FaultPlan` harness makes each scenario replayable; the satellites
(broken-executor surfacing, orphan-dir sweep, spill salvage, resolver
error isolation) ride on the same machinery.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings

import numpy as np
import pytest

from repro.core import (
    LSHBlocker,
    LSHForestBlocker,
    MultiProbeLSHBlocker,
    SALSHBlocker,
)
from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.er import Resolver
from repro.errors import (
    ConfigurationError,
    PoolBrokenError,
    SlabTransportError,
    TransientRuntimeError,
)
from repro.minhash import GrowableSignatureSpill
from repro.minhash.signature import validate_spill
from repro.records import Record
from repro.semantic import PatternSemanticFunction, cora_patterns
from repro.taxonomy.builders import bibliographic_tree
from repro.utils import faults
from repro.utils.faults import FaultPlan
from repro.utils.parallel import (
    ShardPool,
    _SLAB_DIR_PREFIX,
    _validate_slab,
    map_processes,
    set_slab_integrity,
    slab_integrity_enabled,
)
from repro.utils.retry import NO_RETRY, RetryPolicy, as_retry_policy

CORA_ATTRS = ("authors", "title")
FIG1_ATTRS = ("title", "authors")

#: One spec per fault kind of the matrix. ``pool.task_hang`` needs a
#: ``map_timeout`` to be reaped, carried alongside.
FAULT_SPECS = {
    "worker_kill": ({"pool.worker_kill": 1}, None),
    "slab_truncate": ({"slab.truncate": 1}, None),
    "enospc": ({"slab.enospc": 1}, None),
    "hang_timeout": ({"pool.task_hang": 1}, 3.0),
}

#: Zero-backoff policy so recovery tests never sleep.
FAST_RETRY = RetryPolicy(retries=2, backoff=0.0)


def _cora_blockers():
    sf = PatternSemanticFunction(bibliographic_tree(), cora_patterns())
    return {
        "lsh": lambda **kw: LSHBlocker(
            CORA_ATTRS, q=2, k=3, l=4, seed=3, **kw
        ),
        "salsh": lambda **kw: SALSHBlocker(
            CORA_ATTRS, q=2, k=3, l=4, seed=3,
            semantic_function=sf, w=2, mode="or", **kw,
        ),
        "mplsh": lambda **kw: MultiProbeLSHBlocker(
            CORA_ATTRS, q=2, k=3, l=4, seed=3, **kw
        ),
        "forest": lambda **kw: LSHForestBlocker(
            CORA_ATTRS, q=2, k=3, l=4, seed=3, max_block_size=20, **kw
        ),
    }


#: Serial baselines, computed once per (blocker, corpus) per session.
_serial_cache: dict = {}


def _serial_blocks(name, make, dataset):
    key = (name, id(dataset))
    if key not in _serial_cache:
        _serial_cache[key] = make().block(dataset).blocks
    return _serial_cache[key]


def _assert_no_stranded_files(pool):
    # Interned slabs legitimately persist for the corpus's lifetime;
    # everything else (payload/result slabs) must have been unlinked.
    for slab_dir in pool._slab_dirs:
        leftovers = [
            name for name in os.listdir(slab_dir)
            if not name.startswith("intern-")
        ]
        assert leftovers == [], f"stranded slab files: {leftovers}"


class TestFaultPlan:
    def test_count_rule_fires_first_n(self):
        plan = FaultPlan({"slab.enospc": 2})
        assert [plan.fires("slab.enospc") for _ in range(4)] == [
            True, True, False, False,
        ]
        assert plan.fired("slab.enospc") == 2
        assert plan.fired() == 2

    def test_indices_rule_fires_exactly_those(self):
        plan = FaultPlan({"slab.truncate": (1, 3)})
        assert [plan.fires("slab.truncate") for _ in range(5)] == [
            False, True, False, True, False,
        ]

    def test_probability_rule_is_seed_deterministic(self):
        schedule = [
            FaultPlan({"pool.worker_kill": 0.5}, seed=11).fires(
                "pool.worker_kill"
            )
            for _ in range(20)
        ]
        replay = [
            FaultPlan({"pool.worker_kill": 0.5}, seed=11).fires(
                "pool.worker_kill"
            )
            for _ in range(20)
        ]
        assert schedule == replay
        long_run = FaultPlan({"pool.worker_kill": 0.5}, seed=11)
        fired = [long_run.fires("pool.worker_kill") for _ in range(200)]
        assert any(fired) and not all(fired)

    def test_unknown_point_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown injection"):
            FaultPlan({"pool.meteor_strike": 1})

    def test_pid_binding_makes_plan_inert_elsewhere(self):
        plan = FaultPlan({"slab.enospc": 5})
        plan._pid = os.getpid() + 1  # simulate a forked child's view
        assert not plan.fires("slab.enospc")
        assert plan.fired() == 0

    def test_injected_context_arms_and_disarms(self):
        assert faults.active() is None
        with faults.injected({"slab.enospc": 1}) as plan:
            assert faults.active() is plan
            with pytest.raises(OSError):
                faults.maybe_fail("slab.enospc")
        assert faults.active() is None
        faults.maybe_fail("slab.enospc")  # disarmed: no-op

    def test_maybe_fail_truncate_corrupts_file(self, tmp_path):
        path = tmp_path / "victim.bin"
        path.write_bytes(b"x" * 1000)
        with faults.injected({"slab.truncate": 1}):
            faults.maybe_fail("slab.truncate", path=str(path))
        assert path.stat().st_size == 500

    def test_should_fire_consumes_schedule(self):
        with faults.injected({"pool.worker_kill": 1}):
            assert faults.should_fire("pool.worker_kill")
            assert not faults.should_fire("pool.worker_kill")
        assert not faults.should_fire("pool.worker_kill")


class TestRetryPolicy:
    def test_delay_doubles_and_caps(self):
        policy = RetryPolicy(retries=5, backoff=0.5, max_backoff=1.6)
        assert [policy.delay(i) for i in range(4)] == [0.5, 1.0, 1.6, 1.6]

    def test_pause_uses_injected_sleep(self):
        slept = []
        policy = RetryPolicy(retries=1, backoff=0.25, sleep=slept.append)
        policy.pause(0)
        policy.pause(1)
        assert slept == [0.25, 0.5]

    def test_as_retry_policy_normalisation(self):
        assert as_retry_policy(None) == RetryPolicy()
        assert as_retry_policy(0) is NO_RETRY
        assert as_retry_policy(3).retries == 3
        assert as_retry_policy(3).fallback_serial
        custom = RetryPolicy(retries=7)
        assert as_retry_policy(custom) is custom
        for bad in (True, 1.5, "twice"):
            with pytest.raises(ConfigurationError):
                as_retry_policy(bad)
        with pytest.raises(ConfigurationError):
            RetryPolicy(retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff=-0.1)

    def test_no_retry_disables_ladder(self):
        assert NO_RETRY.retries == 0
        assert not NO_RETRY.fallback_serial

    def test_error_taxonomy(self):
        # The retry path keys on this hierarchy: slab failures are
        # transient, transient errors are library errors.
        assert issubclass(SlabTransportError, TransientRuntimeError)
        err = SlabTransportError("gone", path="/x", errno=28)
        assert (err.path, err.errno) == ("/x", 28)
        import pickle

        clone = pickle.loads(pickle.dumps(err))
        assert (clone.path, clone.errno) == ("/x", 28)


class TestSlabIntegrity:
    def test_footer_round_trip_and_corruption(self, tmp_path):
        from repro.utils.parallel import _write_blob_slab

        path = str(tmp_path / "blob.pkl")
        _write_blob_slab(path, b"payload-bytes", True)
        assert _validate_slab(path) == b"payload-bytes"
        # Truncation (even by one byte) must be caught.
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 1)
        with pytest.raises(SlabTransportError, match="footer|checksum"):
            _validate_slab(path)

    def test_missing_footer_rejected(self, tmp_path):
        path = tmp_path / "bare.pkl"
        path.write_bytes(b"no footer here, just bytes and padding!")
        with pytest.raises(SlabTransportError, match="footer"):
            _validate_slab(str(path))

    def test_array_slab_footer_is_np_load_compatible(self, tmp_path):
        from repro.utils.parallel import _ArraySlab, _write_array_slab

        path = str(tmp_path / "array.npy")
        array = np.arange(5000, dtype=np.uint64).reshape(100, 50)
        _write_array_slab(path, array, True)
        # Plain numpy ignores the trailing footer bytes...
        assert np.array_equal(np.load(path), array)
        # ...and the validating load sees them.
        assert np.array_equal(np.asarray(_ArraySlab(path).load(True)), array)
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) // 2)
        with pytest.raises(SlabTransportError):
            _ArraySlab(path).load(True)

    def test_set_slab_integrity_round_trips(self):
        previous = set_slab_integrity(False)
        try:
            assert previous is True
            assert not slab_integrity_enabled()
        finally:
            set_slab_integrity(previous)
        assert slab_integrity_enabled()

    def test_pool_blocks_identical_with_integrity_off(self, fig1):
        # The resilience-overhead bench times this configuration; it
        # must stay output-identical, not just fast.
        blocker = lambda **kw: LSHBlocker(FIG1_ATTRS, q=2, k=2, l=4, **kw)
        serial = blocker().block(fig1).blocks
        previous = set_slab_integrity(False)
        try:
            with ShardPool(2) as pool:
                assert blocker(pool=pool).block(fig1).blocks == serial
        finally:
            set_slab_integrity(previous)


class TestSpillIntegrity:
    def test_closed_spill_validates(self, tmp_path):
        path = tmp_path / "spill.npy"
        with GrowableSignatureSpill(path, 8) as spill:
            spill.append(np.arange(24, dtype=np.uint64).reshape(3, 8))
        assert validate_spill(path, 8) == 3
        matrix = np.load(path)
        assert matrix.shape == (3, 8)

    def test_truncated_spill_rejected(self, tmp_path):
        path = tmp_path / "spill.npy"
        with GrowableSignatureSpill(path, 4) as spill:
            spill.append(np.arange(40, dtype=np.uint64).reshape(10, 4))
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 9)
        with pytest.raises(SlabTransportError, match="footer|rows"):
            validate_spill(path, 4)

    def test_finalize_validates_on_attach(self, tmp_path):
        spill = GrowableSignatureSpill(tmp_path / "spill.npy", 4)
        spill.append(np.arange(40, dtype=np.uint64).reshape(10, 4))
        spill.close()
        with open(spill.path, "r+b") as handle:
            handle.truncate(os.path.getsize(spill.path) - 16)  # drop footer
        with pytest.raises(SlabTransportError):
            spill.finalize()

    def test_append_write_error_salvages(self, tmp_path):
        # Satellite: an OSError mid-append must close-and-salvage the
        # rows already written and surface a typed, transient error.
        spill = GrowableSignatureSpill(tmp_path / "spill.npy", 4)
        spill.append(np.arange(20, dtype=np.uint64).reshape(5, 4))
        with faults.injected({"spill.write_error": 1}):
            with pytest.raises(SlabTransportError, match="salvaged"):
                spill.append(np.ones((2, 4), dtype=np.uint64))
        assert spill.finalized  # handle released, no leak
        with pytest.raises(ConfigurationError):
            spill.append(np.ones((1, 4), dtype=np.uint64))
        # The salvaged file is a valid, footered .npy of the 5 rows.
        assert validate_spill(spill.path, 4) == 5
        salvaged = np.load(spill.path)
        assert np.array_equal(
            salvaged, np.arange(20, dtype=np.uint64).reshape(5, 4)
        )


@pytest.mark.parametrize("fault_kind", sorted(FAULT_SPECS))
class TestFaultMatrix:
    """The tentpole equivalence claim, fault × blocker × corpus."""

    def test_blocks_identical_on_cora(self, cora_small, fault_kind):
        spec, map_timeout = FAULT_SPECS[fault_kind]
        for name, make in _cora_blockers().items():
            serial = _serial_blocks(name, make, cora_small)
            with ShardPool(
                2, retry=FAST_RETRY, map_timeout=map_timeout
            ) as pool:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", RuntimeWarning)
                    with faults.injected(spec, seed=13) as plan:
                        injected = make(pool=pool).block(cora_small)
                assert plan.fired() >= 1, (name, fault_kind)
                assert injected.blocks == serial, (name, fault_kind)
                # The pool must stay usable after recovery (disarmed).
                again = make(pool=pool).block(cora_small)
                assert again.blocks == serial, (name, fault_kind)
                _assert_no_stranded_files(pool)

    def test_blocks_identical_on_fig1(self, fig1, fig1_sf, fault_kind):
        spec, map_timeout = FAULT_SPECS[fault_kind]
        makers = {
            "lsh": lambda **kw: LSHBlocker(
                FIG1_ATTRS, q=2, k=2, l=4, seed=1, **kw
            ),
            "salsh": lambda **kw: SALSHBlocker(
                FIG1_ATTRS, q=2, k=2, l=4, seed=1,
                semantic_function=fig1_sf, w=2, mode="or", **kw,
            ),
        }
        for name, make in makers.items():
            serial = _serial_blocks(f"fig1-{name}", make, fig1)
            with ShardPool(
                2, retry=FAST_RETRY, map_timeout=map_timeout
            ) as pool:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", RuntimeWarning)
                    with faults.injected(spec, seed=13):
                        injected = make(pool=pool).block(fig1)
                assert injected.blocks == serial, (name, fault_kind)
                _assert_no_stranded_files(pool)


class TestRecoveryLadder:
    def test_enospc_switches_to_disk_fallback_once(self, cora_small):
        make = _cora_blockers()["lsh"]
        serial = _serial_blocks("lsh", make, cora_small)
        with ShardPool(2, retry=FAST_RETRY) as pool:
            with pytest.warns(RuntimeWarning, match="out of space"):
                with faults.injected({"slab.enospc": 1}):
                    blocks = make(pool=pool).block(cora_small).blocks
            assert blocks == serial
            assert pool.on_disk_fallback
            fallback_dir = pool._slab_dir
            assert fallback_dir != pool._slab_dirs[0]
            # The fallback is permanent for the pool's life, and the
            # switch (with its warning) happens only once.
            with warnings.catch_warnings():
                warnings.simplefilter("error", RuntimeWarning)
                assert make(pool=pool).block(cora_small).blocks == serial
            assert pool._slab_dir == fallback_dir
        # close() removes the fallback dir too.
        assert not os.path.isdir(fallback_dir)

    def test_serial_fallback_is_final_rung(self, cora_small):
        # Every attempt loses a worker; retries exhaust and the map
        # must degrade to serial in-process execution — same blocks.
        make = _cora_blockers()["lsh"]
        serial = _serial_blocks("lsh", make, cora_small)
        policy = RetryPolicy(retries=1, backoff=0.0)
        with ShardPool(2, retry=policy) as pool:
            with pytest.warns(RuntimeWarning, match="serially"):
                # Kill one worker per attempt of the first map (consults
                # 0 and 2 are the first payload of attempts 1 and 2):
                # initial + 1 retry both break, then the ladder's last
                # rung runs the leftovers serially.
                with faults.injected({"pool.worker_kill": (0, 2)}):
                    blocks = make(pool=pool).block(cora_small).blocks
            assert blocks == serial
            # Pool usable afterwards.
            assert make(pool=pool).block(cora_small).blocks == serial
            _assert_no_stranded_files(pool)

    def test_retry_zero_surfaces_pool_broken_error(self, cora_small):
        # Satellite: the pre-fault-tolerance executor-reuse bug. With
        # recovery disabled a killed worker must surface as
        # PoolBrokenError — and the pool must still be usable (the
        # broken executor was torn down, not reused).
        make = _cora_blockers()["lsh"]
        serial = _serial_blocks("lsh", make, cora_small)
        with ShardPool(2, retry=0) as pool:
            with faults.injected({"pool.worker_kill": 1}):
                with pytest.raises(PoolBrokenError):
                    make(pool=pool).block(cora_small)
            # The next map forks a fresh executor and succeeds.
            assert make(pool=pool).block(cora_small).blocks == serial
            _assert_no_stranded_files(pool)

    def test_timeout_reaps_hung_worker(self):
        with ShardPool(2, retry=0) as pool:
            with faults.injected({"pool.task_hang": 1}):
                with pytest.raises(PoolBrokenError, match="timeout"):
                    pool.map(_triple, [1, 2, 3], timeout=1.0)
            assert pool.map(_triple, [1, 2, 3]) == [3, 6, 9]

    def test_configure_updates_knobs(self):
        pool = ShardPool(2)
        try:
            assert pool._retry.fallback_serial
            pool.configure(retry=0, map_timeout=5.0)
            assert pool._retry is NO_RETRY
            assert pool._map_timeout == 5.0
            pool.configure()  # no-op leaves both untouched
            assert pool._retry is NO_RETRY
            assert pool._map_timeout == 5.0
            with pytest.raises(ConfigurationError):
                pool.configure(map_timeout=-1.0)
        finally:
            pool.close()

    def test_pipeline_threads_knobs_to_pool(self, cora_small):
        with ShardPool(2) as pool:
            config = PipelineConfig(
                attributes=CORA_ATTRS, q=2, pool=pool,
                retry=0, map_timeout=30.0,
            )
            report = run_pipeline(cora_small, config)
            assert report.outcome.result.blocks
            assert pool._retry is NO_RETRY
            assert pool._map_timeout == 30.0

    def test_map_timeout_validation(self):
        with pytest.raises(ConfigurationError, match="map_timeout"):
            ShardPool(2, map_timeout=0)


class TestOrphanSweep:
    def test_stale_dirs_swept_live_dirs_kept(self, tmp_path, monkeypatch):
        # Satellite: a crashed owner leaks its slab dir forever; a new
        # pool's startup sweep must remove exactly the provably dead
        # ones.
        monkeypatch.setenv("REPRO_SHARDPOOL_DIR", str(tmp_path))
        worker = multiprocessing.Process(target=_noop)
        worker.start()
        worker.join()
        dead_pid = worker.pid
        assert dead_pid is not None
        stale = tmp_path / f"{_SLAB_DIR_PREFIX}{dead_pid}-stale"
        stale.mkdir()
        (stale / "slab-1-2.npy").write_bytes(b"junk")
        own = tmp_path / f"{_SLAB_DIR_PREFIX}{os.getpid()}-live"
        own.mkdir()
        legacy = tmp_path / f"{_SLAB_DIR_PREFIX}nopid"
        legacy.mkdir()
        unrelated = tmp_path / "unrelated-dir"
        unrelated.mkdir()
        with ShardPool(2) as pool:
            assert pool._slab_dir.startswith(str(tmp_path))
            assert not stale.exists()  # dead owner: swept
            assert own.exists()  # live owner (us): kept
            assert legacy.exists()  # unparsable pid: kept
            assert unrelated.exists()  # foreign name: kept

    def test_pool_dir_carries_owner_pid(self):
        with ShardPool(2) as pool:
            name = os.path.basename(pool._slab_dir)
            assert name.startswith(f"{_SLAB_DIR_PREFIX}{os.getpid()}-")


class TestMapProcessesDegradation:
    def test_fresh_pool_broken_completes_serially(self, tmp_path):
        marker = str(tmp_path / "kill-once")
        payloads = [(1, marker), (2, None), (3, None), (4, None)]
        with pytest.warns(RuntimeWarning, match="serially"):
            results = map_processes(_exit_once, payloads, processes=2)
        assert results == [3, 6, 9, 12]

    def test_genuine_errors_still_propagate(self):
        with pytest.raises(ValueError, match="boom"):
            map_processes(_raise_on_negative, [1, -1, 2], processes=2)


class TestResolverErrorIsolation:
    def _resolver(self, tiny_dataset):
        blocker = LSHBlocker(("title",), q=2, k=2, l=4, seed=1)
        return Resolver(blocker, tiny_dataset)

    def test_poisoned_probe_yields_error_tier(self, tiny_dataset):
        resolver = self._resolver(tiny_dataset)
        probes = [
            Record("q1", {"title": "alpha beta gamma"}),
            _PoisonRecord("q2"),
            Record("q3", {"title": "delta epsilon zeta"}),
        ]
        resolved = resolver.resolve_many(probes)
        assert [e.tier for e in resolved] != ["error"] * 3
        assert resolved[0].tier in ("match", "possible", "new")
        assert resolved[1].tier == "error"
        assert resolved[1].record_id == "q2"
        assert resolved[1].best_id is None
        assert resolved[1].candidates == ()
        assert "boom" in resolved[1].error
        assert resolved[2].tier in ("match", "possible", "new")
        # Clean probes resolve exactly as they would alone.
        alone = resolver.resolve_one(probes[0])
        assert resolved[0] == alone

    def test_fail_fast_opt_out(self, tiny_dataset):
        resolver = self._resolver(tiny_dataset)
        with pytest.raises(RuntimeError, match="boom"):
            resolver.resolve_many(
                [_PoisonRecord("q2")], isolate_errors=False
            )

    def test_error_entries_count_resolution(self, tiny_dataset):
        resolver = self._resolver(tiny_dataset)
        resolved = resolver.resolve_many([_PoisonRecord("qx")] * 3)
        assert all(e.tier == "error" for e in resolved)


class _PoisonRecord:
    """A probe whose attribute access explodes mid-resolution."""

    record_id = None

    def __init__(self, record_id):
        self.record_id = record_id

    def value(self, _attribute):
        raise RuntimeError("boom")

    def __getattr__(self, name):
        raise RuntimeError("boom")


def _noop():
    pass


def _triple(x):
    return 3 * x


def _raise_on_negative(x):
    if x < 0:
        raise ValueError("boom")
    return x


def _exit_once(payload):
    value, marker = payload
    if marker is not None and not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os._exit(1)
    return value * 3
