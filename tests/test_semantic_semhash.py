"""Tests for semhash signatures (Algorithm 1) and Prop 4.3."""

import numpy as np
import pytest

from repro.errors import SemanticFunctionError
from repro.records import Dataset, Record
from repro.semantic import (
    CallableSemanticFunction,
    PatternSemanticFunction,
    SemhashEncoder,
    cora_patterns,
    record_semantic_similarity,
    semhash_jaccard,
)


def pub(rid, journal="", booktitle="", institution=""):
    return Record(
        rid,
        {"journal": journal, "booktitle": booktitle, "institution": institution},
    )


@pytest.fixture()
def cora_fn(tbib):
    return PatternSemanticFunction(tbib, cora_patterns())


@pytest.fixture()
def records():
    return [
        pub("r1", journal="ml journal"),                     # -> c3
        pub("r2", booktitle="icml"),                         # -> c4
        pub("r3", institution="anu"),                        # -> c7, c8
        pub("r4"),                                           # -> c1
        pub("r5", journal="x", booktitle="y", institution="z"),  # c3,c4,c6
    ]


class TestSemhashEncoder:
    def test_bits_cover_reachable_leaves(self, cora_fn, records):
        encoder = SemhashEncoder(cora_fn, records)
        # c1's leaf set covers c3,c4,c5,c7,c8; patterns never reach c9.
        assert set(encoder.bits) == {"c3", "c4", "c5", "c7", "c8"}
        assert encoder.num_bits == 5

    def test_paper_reports_5_bit_cora_signature(self, cora_fn, records):
        """§6.2: 'we have 5 bit semantic signature for each record in Cora'."""
        assert SemhashEncoder(cora_fn, records).num_bits == 5

    def test_encode_leaf_bits(self, cora_fn, records):
        encoder = SemhashEncoder(cora_fn, records)
        sig = encoder.encode(pub("x", journal="j"))  # c3 only
        assert list(encoder.bits[i] for i in np.flatnonzero(sig)) == ["c3"]

    def test_encode_internal_concept_sets_all_descendant_bits(self, cora_fn, records):
        encoder = SemhashEncoder(cora_fn, records)
        sig = encoder.encode(pub("x"))  # pattern 8 -> c1 -> all 5 leaves
        assert int(sig.sum()) == 5

    def test_disjointness_bits_pairwise_unrelated(self, cora_fn, records, tbib):
        encoder = SemhashEncoder(cora_fn, records)
        for b1 in encoder.bits:
            for b2 in encoder.bits:
                if b1 != b2:
                    assert not tbib.related(b1, b2)

    def test_signature_matrix_shape(self, cora_fn, records):
        encoder = SemhashEncoder(cora_fn, records)
        matrix = encoder.signature_matrix(records)
        assert matrix.shape == (5, 5)
        assert matrix.dtype == np.uint8

    def test_no_concepts_raises(self, tbib):
        fn = CallableSemanticFunction(tbib, lambda r: ())
        with pytest.raises(SemanticFunctionError):
            SemhashEncoder(fn, [pub("r")])

    def test_interpretation_cached_and_fresh(self, cora_fn, records):
        encoder = SemhashEncoder(cora_fn, records)
        assert encoder.interpretation(records[0]) == frozenset({"c3"})
        fresh = pub("new", booktitle="b")
        assert encoder.interpretation(fresh) == frozenset({"c4"})


class TestSemhashJaccard:
    def test_identical(self):
        sig = np.array([1, 0, 1], dtype=np.uint8)
        assert semhash_jaccard(sig, sig) == 1.0

    def test_disjoint(self):
        a = np.array([1, 0], dtype=np.uint8)
        b = np.array([0, 1], dtype=np.uint8)
        assert semhash_jaccard(a, b) == 0.0

    def test_all_zero_vs_anything_zero(self):
        zero = np.zeros(3, dtype=np.uint8)
        other = np.array([1, 1, 0], dtype=np.uint8)
        assert semhash_jaccard(zero, other) == 0.0
        assert semhash_jaccard(zero, zero) == 0.0

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            semhash_jaccard(np.zeros(2, np.uint8), np.zeros(3, np.uint8))


class TestProposition4_3:
    """simJ(G(r1), G(r2)) equals simS(r1, r2) — exact in this construction."""

    PAIRS = [
        ("r1", "r2"),
        ("r1", "r3"),
        ("r1", "r5"),
        ("r2", "r5"),
        ("r3", "r4"),
        ("r4", "r5"),
        ("r2", "r3"),
    ]

    @pytest.mark.parametrize("id1,id2", PAIRS)
    def test_signature_jaccard_equals_semantic_similarity(
        self, cora_fn, records, tbib, id1, id2
    ):
        encoder = SemhashEncoder(cora_fn, records)
        by_id = {r.record_id: r for r in records}
        r1, r2 = by_id[id1], by_id[id2]
        expected = record_semantic_similarity(
            tbib, cora_fn.interpret(r1), cora_fn.interpret(r2)
        )
        actual = semhash_jaccard(encoder.encode(r1), encoder.encode(r2))
        assert actual == pytest.approx(expected)
