"""Distributional checks on the synthetic generators.

The substitutions in DESIGN.md are only valid if the generators really
produce the properties the experiments depend on. These tests pin those
properties down quantitatively so a regression in the generators cannot
silently invalidate the benchmark shapes.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.datasets import CoraLikeGenerator, NCVoterLikeGenerator
from repro.minhash import Shingler


class TestCoraProperties:
    @pytest.fixture(scope="class")
    def cora(self):
        return CoraLikeGenerator(num_records=1879, num_entities=190, seed=3).generate()

    def test_cluster_size_skew(self, cora):
        """Real Cora has a few huge clusters; the mean is ~10."""
        sizes = sorted((len(m) for m in cora.clusters.values()), reverse=True)
        assert sizes[0] >= 30
        mean = sum(sizes) / len(sizes)
        assert 7.0 <= mean <= 13.0

    def test_true_match_similarity_spread(self, cora):
        """Dirty duplicates: true-match q=4 Jaccard must spread well
        below 1.0 (this is what makes sh=0.3-style thresholds sane)."""
        shingler = Shingler(("authors", "title"), q=4)
        sims = [
            shingler.jaccard(cora[a], cora[b])
            for a, b in sorted(cora.true_matches)[:2000]
        ]
        below_07 = sum(1 for s in sims if s < 0.7) / len(sims)
        assert below_07 > 0.2

    def test_cross_entity_title_confusability(self, cora):
        """Related titles across entities (the Fig. 1 situation) must
        exist: some non-match pairs are textually similar."""
        shingler = Shingler(("title",), q=4)
        records = list(cora)[:400]
        confusable = 0
        for i, r1 in enumerate(records):
            for r2 in records[i + 1 : i + 40]:
                if r1.entity_id != r2.entity_id and shingler.jaccard(r1, r2) > 0.5:
                    confusable += 1
        assert confusable > 0

    def test_venue_type_coverage(self, cora):
        """All Table 1 pattern families must be populated."""
        journal = sum(1 for r in cora if r.has_value("journal"))
        booktitle = sum(1 for r in cora if r.has_value("booktitle"))
        institution = sum(1 for r in cora if r.has_value("institution"))
        none = sum(
            1 for r in cora
            if not any(r.has_value(a) for a in ("journal", "booktitle", "institution"))
        )
        for share in (journal, booktitle, institution, none):
            assert share > len(cora) * 0.02

    def test_semantic_noise_exists_within_clusters(self, cora):
        """Some duplicates disagree on their venue pattern (the §6.3.2
        premise for Cora's PC gap)."""
        disagreements = 0
        for members in cora.clusters.values():
            patterns = {
                tuple(cora[rid].has_value(a) for a in ("journal", "booktitle", "institution"))
                for rid in members
            }
            if len(patterns) > 1:
                disagreements += 1
        assert disagreements > 0


class TestVoterProperties:
    @pytest.fixture(scope="class")
    def voter(self):
        return NCVoterLikeGenerator(num_records=5000, seed=3).generate()

    def test_low_duplication(self, voter):
        assert len(voter.clusters) == pytest.approx(4500, abs=1)

    def test_name_frequency_skew(self, voter):
        """A Zipf-ish head: common surnames cover a visible share."""
        last_names = Counter(r.get("last_name") for r in voter)
        top30 = sum(count for _, count in last_names.most_common(30))
        assert top30 / len(voter) > 0.2
        # ...but names are still high-cardinality overall.
        assert len(last_names) > 500

    def test_exact_and_typo_duplicates_mix(self, voter):
        exact = 0
        typo = 0
        for id1, id2 in voter.true_matches:
            r1, r2 = voter[id1], voter[id2]
            same = (
                r1.get("first_name") == r2.get("first_name")
                and r1.get("last_name") == r2.get("last_name")
            )
            if same:
                exact += 1
            else:
                typo += 1
        assert exact > 0 and typo > 0
        assert 0.3 <= exact / (exact + typo) <= 0.7

    def test_semantic_attributes_rarely_contradict(self, voter):
        """Uncertain, not noisy (§6.2): duplicates may read 'u' but
        should almost never carry two *different known* race values."""
        contradictions = 0
        comparable = 0
        for id1, id2 in voter.true_matches:
            race1, race2 = voter[id1].get("race"), voter[id2].get("race")
            if race1 != "u" and race2 != "u":
                comparable += 1
                if race1 != race2:
                    contradictions += 1
        assert comparable > 0
        assert contradictions / comparable < 0.02

    def test_gender_matches_first_name_pool(self, voter):
        """Known-gender records draw names from the right pool."""
        from repro.datasets import wordpools

        male = set(wordpools.VOTER_FIRST_M)
        female = set(wordpools.VOTER_FIRST_F)
        for record in list(voter)[:500]:
            gender = record.get("gender")
            name = record.get("first_name")
            if gender == "m" and name in (male | female):
                assert name in male or name not in female
