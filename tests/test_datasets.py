"""Tests for the corruption engine and both dataset generators."""

import pytest

from repro.datasets import (
    CoraLikeGenerator,
    Corruptor,
    NCVoterLikeGenerator,
    fig1_dataset,
    fig1_semantic_function,
)
from repro.errors import DatasetError
from repro.semantic import PatternSemanticFunction, cora_patterns
from repro.taxonomy.builders import bibliographic_tree
from repro.utils.rand import rng_from_seed


def corruptor(seed=0):
    return Corruptor(rng_from_seed(seed, "test"))


class TestCorruptor:
    def test_typo_insert_lengthens(self):
        assert len(corruptor().typo_insert("abc")) == 4

    def test_typo_delete_shortens(self):
        assert len(corruptor().typo_delete("abc")) == 2

    def test_typo_delete_empty_noop(self):
        assert corruptor().typo_delete("") == ""

    def test_typo_substitute_same_length(self):
        text = "hello"
        assert len(corruptor().typo_substitute(text)) == len(text)

    def test_typo_transpose_preserves_characters(self):
        result = corruptor().typo_transpose("abcd")
        assert sorted(result) == list("abcd")

    def test_transpose_short_noop(self):
        assert corruptor().typo_transpose("a") == "a"

    def test_ocr_error_applies_known_confusion(self):
        result = corruptor().ocr_error("modern")
        assert result != "modern" or "m" not in "modern"

    def test_drop_token_keeps_at_least_one(self):
        assert corruptor().drop_token("single") == "single"
        assert len(corruptor().drop_token("two words").split()) == 1

    def test_swap_tokens(self):
        result = corruptor(3).swap_tokens("qing wang")
        assert sorted(result.split()) == ["qing", "wang"]

    def test_abbreviate_token(self):
        result = corruptor().abbreviate_token("christian lebiere")
        assert "." in result

    def test_deterministic_given_same_stream(self):
        c1, c2 = corruptor(9), corruptor(9)
        assert c1.character_noise("entity resolution", 2) == c2.character_noise(
            "entity resolution", 2
        )

    def test_maybe_respects_extremes(self):
        c = corruptor()
        assert not c.maybe(0.0)
        assert c.maybe(1.0)


class TestCoraGenerator:
    def test_sizes(self, cora_small):
        assert len(cora_small) == 300
        assert len(cora_small.clusters) == 40

    def test_deterministic(self):
        g = CoraLikeGenerator(num_records=100, num_entities=20, seed=3)
        d1, d2 = g.generate(), g.generate()
        assert [r.fields for r in d1] == [r.fields for r in d2]

    def test_different_seeds_differ(self):
        d1 = CoraLikeGenerator(num_records=100, num_entities=20, seed=1).generate()
        d2 = CoraLikeGenerator(num_records=100, num_entities=20, seed=2).generate()
        assert [r.fields for r in d1] != [r.fields for r in d2]

    def test_invalid_sizes(self):
        with pytest.raises(DatasetError):
            CoraLikeGenerator(num_records=5, num_entities=10).generate()

    def test_every_record_matches_a_table1_pattern(self, cora_small):
        """Table 1's pattern set is complete over the generated corpus."""
        fn = PatternSemanticFunction(bibliographic_tree(), cora_patterns())
        for record in cora_small:
            assert fn.matching_pattern(record) is not None

    def test_duplicates_share_entity_and_differ_textually_sometimes(self, cora_small):
        clusters = [ids for ids in cora_small.clusters.values() if len(ids) >= 3]
        assert clusters, "expected at least one cluster of size >= 3"
        some_cluster = clusters[0]
        titles = {cora_small[rid].get("title") for rid in some_cluster}
        assert len(titles) >= 1  # may collapse, but must exist

    def test_heavy_duplication(self, cora_small):
        # Cora-like data must contain large clusters (skewed sizes).
        largest = max(len(ids) for ids in cora_small.clusters.values())
        assert largest >= 10

    def test_venue_types_drive_missing_values(self):
        ds = CoraLikeGenerator(num_records=400, num_entities=80, seed=5).generate()
        with_journal = sum(1 for r in ds if r.has_value("journal"))
        with_booktitle = sum(1 for r in ds if r.has_value("booktitle"))
        with_institution = sum(1 for r in ds if r.has_value("institution"))
        assert with_journal > 0 and with_booktitle > 0 and with_institution > 0


class TestNCVoterGenerator:
    def test_sizes_and_duplicates(self, voter_small):
        assert len(voter_small) == 800
        # 10% duplicates -> 720 entities.
        assert len(voter_small.clusters) == 720

    def test_deterministic(self):
        g = NCVoterLikeGenerator(num_records=200, seed=4)
        assert [r.fields for r in g.generate()] == [r.fields for r in g.generate()]

    def test_uncertain_rates_materialise(self):
        ds = NCVoterLikeGenerator(num_records=2000, seed=6).generate()
        genders = [r.get("gender") for r in ds]
        races = [r.get("race") for r in ds]
        assert 0.01 < genders.count("u") / len(genders) < 0.15
        assert 0.05 < races.count("u") / len(races) < 0.25

    def test_exact_duplicate_fraction(self):
        ds = NCVoterLikeGenerator(
            num_records=2000, seed=8, exact_duplicate_fraction=1.0
        ).generate()
        for id1, id2 in ds.true_matches:
            r1, r2 = ds[id1], ds[id2]
            assert r1.get("first_name") == r2.get("first_name")
            assert r1.get("last_name") == r2.get("last_name")

    def test_invalid_fraction(self):
        with pytest.raises(DatasetError):
            NCVoterLikeGenerator(num_records=10, duplicate_fraction=1.0).generate()

    def test_race_values_are_known_codes(self, voter_small):
        valid = set("wbaimou")
        for record in voter_small:
            assert record.get("race") in valid


class TestFig1:
    def test_six_records(self, fig1):
        assert len(fig1) == 6
        assert fig1.record_ids == ["r1", "r2", "r3", "r4", "r5", "r6"]

    def test_ground_truth_cluster(self, fig1):
        assert fig1.is_true_match("r1", "r2")
        assert fig1.is_true_match("r1", "r6")
        assert not fig1.is_true_match("r1", "r4")

    def test_interpretations_follow_example_4_2(self, fig1, fig1_sf):
        expected = {
            "r1": {"c4"}, "r2": {"c2"}, "r3": {"c4"},
            "r4": {"c7"}, "r5": {"c7"}, "r6": {"c0"},
        }
        for record in fig1:
            assert fig1_sf.interpret(record) == frozenset(
                expected[record.record_id]
            ), record.record_id
