"""Tests for meta-blocking: graph, weights, pruning, pipeline."""

import math

import pytest

from repro.core.base import BlockingResult
from repro.errors import ConfigurationError
from repro.evaluation import evaluate_blocks
from repro.metablocking import (
    PRUNING_ALGORITHMS,
    WEIGHT_SCHEMES,
    build_blocking_graph,
    edge_weight,
    prune,
    run_metablocking,
)
from repro.records import Dataset, Record


def blocks_fixture():
    """Blocks: {a,b,c}, {a,b}, {c,d} — a,b co-occur twice."""
    return BlockingResult("src", (("a", "b", "c"), ("a", "b"), ("c", "d")))


def dataset_fixture():
    return Dataset(
        [
            Record("a", {}, entity_id="e1"),
            Record("b", {}, entity_id="e1"),
            Record("c", {}, entity_id="e2"),
            Record("d", {}, entity_id="e2"),
        ]
    )


class TestWeights:
    def test_cbs_counts_common_blocks(self):
        graph = build_blocking_graph(blocks_fixture(), "CBS")
        assert graph.edges[("a", "b")] == 2.0
        assert graph.edges[("a", "c")] == 1.0

    def test_js_normalises_by_union(self):
        graph = build_blocking_graph(blocks_fixture(), "JS")
        # a in blocks {0,1}, b in {0,1}: intersection 2, union 2.
        assert graph.edges[("a", "b")] == pytest.approx(1.0)
        # a in {0,1}, c in {0,2}: intersection 1, union 3.
        assert graph.edges[("a", "c")] == pytest.approx(1 / 3)

    def test_ecbs_weights_rare_blocks_higher(self):
        graph = build_blocking_graph(blocks_fixture(), "ECBS")
        expected = 2.0 * math.log(3 / 2) * math.log(3 / 2)
        assert graph.edges[("a", "b")] == pytest.approx(expected)

    def test_arcs_small_blocks_count_more(self):
        graph = build_blocking_graph(blocks_fixture(), "ARCS")
        # (a,b): block 0 has 3 comparisons, block 1 has 1.
        assert graph.edges[("a", "b")] == pytest.approx(1 / 3 + 1.0)
        assert graph.edges[("c", "d")] == pytest.approx(1.0)

    def test_ejs_scales_js_by_degree(self):
        graph = build_blocking_graph(blocks_fixture(), "EJS")
        # 4 total edges; deg(a)=2, deg(b)=2.
        expected = 1.0 * math.log(4 / 2) * math.log(4 / 2)
        assert graph.edges[("a", "b")] == pytest.approx(expected)

    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            edge_weight(
                "XX",
                blocks_a=frozenset(),
                blocks_b=frozenset(),
                num_blocks=0,
                block_sizes=(),
                degree_a=0,
                degree_b=0,
                total_edges=0,
            )

    def test_all_schemes_produce_finite_nonnegative(self):
        for scheme in WEIGHT_SCHEMES:
            graph = build_blocking_graph(blocks_fixture(), scheme)
            for weight in graph.edges.values():
                assert weight >= 0.0 and math.isfinite(weight)


class TestPruning:
    def test_wep_keeps_above_mean(self):
        graph = build_blocking_graph(blocks_fixture(), "CBS")
        kept = prune(graph, "WEP")
        # Mean weight = (2+1+1+1)/4 = 1.25 -> only (a,b) survives.
        assert kept == {("a", "b")}

    def test_cep_budget(self):
        graph = build_blocking_graph(blocks_fixture(), "CBS")
        kept = prune(graph, "CEP")
        # Budget = floor((3+2+2)/2) = 3 of 4 edges.
        assert len(kept) == 3
        assert ("a", "b") in kept

    def test_wnp_keeps_local_maxima(self):
        graph = build_blocking_graph(blocks_fixture(), "CBS")
        kept = prune(graph, "WNP")
        assert ("a", "b") in kept
        # d's only edge is (c,d): it survives d's local mean.
        assert ("c", "d") in kept

    def test_cnp_per_node_budget(self):
        graph = build_blocking_graph(blocks_fixture(), "CBS")
        kept = prune(graph, "CNP")
        # k = floor(7/4) = 1 edge per node.
        assert ("a", "b") in kept

    def test_unknown_algorithm(self):
        graph = build_blocking_graph(blocks_fixture(), "CBS")
        with pytest.raises(ConfigurationError):
            prune(graph, "ZAP")

    def test_empty_graph(self):
        graph = build_blocking_graph(BlockingResult("x", ()), "CBS")
        for algorithm in PRUNING_ALGORITHMS:
            assert prune(graph, algorithm) == set()


class TestPipeline:
    def test_output_blocks_are_pairs(self):
        pruned = run_metablocking(blocks_fixture(), "CBS", "WEP")
        assert all(len(block) == 2 for block in pruned.blocks)

    def test_pruning_cannot_add_pairs(self):
        source = blocks_fixture()
        for scheme in WEIGHT_SCHEMES:
            for algorithm in PRUNING_ALGORITHMS:
                pruned = run_metablocking(source, scheme, algorithm)
                assert pruned.distinct_pairs <= source.distinct_pairs

    def test_improves_pq_star_on_redundant_blocks(self):
        """Meta-blocking's purpose: fewer redundant comparisons."""
        ds = dataset_fixture()
        source = blocks_fixture()
        before = evaluate_blocks(source, ds)
        after = evaluate_blocks(run_metablocking(source, "CBS", "WEP"), ds)
        assert after.pq_star >= before.pq_star

    def test_metadata_tracks_configuration(self):
        pruned = run_metablocking(blocks_fixture(), "JS", "CNP")
        assert pruned.metadata["scheme"] == "JS"
        assert pruned.metadata["algorithm"] == "CNP"
