"""Cross-dataset record linkage: the dataset-role axis end to end.

Covers the bipartite pair codec, the CSR cross-pair enumeration
kernel, :class:`LinkedCorpus` semantics, ``block_pair`` on all four
blockers (no within-side pairs, equality with the filtered
``block(S ∪ T)`` oracle, byte-identical blocks across the serial,
``processes=2`` and warm-pool runtimes), clean-clean evaluation
(array ≡ legacy engines), the linked CSV codec's line-numbered
errors, and the linkage resolver mode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BipartiteBlockingResult,
    LSHBlocker,
    LSHForestBlocker,
    MultiProbeLSHBlocker,
    SALSHBlocker,
    as_bipartite,
)
from repro.datasets import NCVoterLikeGenerator
from repro.errors import ConfigurationError, DatasetError, EvaluationError
from repro.er import Resolver, SimilarityMatcher
from repro.evaluation import evaluate_linkage
from repro.records import (
    DATASET_ROLES,
    Dataset,
    LinkedCorpus,
    Record,
    decode_pair_keys,
    encode_bipartite_keys,
    enumerate_csr_cross_pairs,
    read_linked_csv,
    unique_bipartite_keys,
    write_linked_csv,
)
from repro.utils.parallel import ShardPool
from repro.utils.rand import rng_from_seed

BLOCKER_KINDS = ("lsh", "salsh", "mplsh", "forest")


def _blocker(kind, corpus, fig1_sf=None, **kw):
    if corpus == "fig1":
        base = dict(q=3, k=2, l=3, seed=1, **kw)
        attrs = ("title", "authors")
    else:  # cora
        base = dict(q=3, k=3, l=6, seed=3, **kw)
        attrs = ("authors", "title")
    if kind == "lsh":
        return LSHBlocker(attrs, **base)
    if kind == "salsh":
        if corpus == "fig1":
            sf, w = fig1_sf, "all"
        else:
            from repro.semantic import PatternSemanticFunction, cora_patterns
            from repro.taxonomy.builders import bibliographic_tree

            sf = PatternSemanticFunction(bibliographic_tree(), cora_patterns())
            w = 2
        return SALSHBlocker(
            attrs, semantic_function=sf, w=w, mode="or", **base
        )
    if kind == "mplsh":
        return MultiProbeLSHBlocker(attrs, **base)
    return LSHForestBlocker(attrs, **base)


def _split(dataset, seed, name):
    """Alternating-record split into a (source, target) LinkedCorpus."""
    records = list(dataset)
    rng = rng_from_seed(seed, "linkage-split", name)
    rng.shuffle(records)
    cut = len(records) // 3
    return LinkedCorpus(
        Dataset(records[:cut], name=f"{name}-src"),
        Dataset(records[cut:], name=f"{name}-tgt"),
    )


def _oracle_cross_pairs(blocker, linked):
    """Filtered block(S ∪ T): cross-side pairs of each union block."""
    result = blocker.block(linked.union)
    source_ids = linked.source_id_set
    pairs = set()
    for block in result.blocks:
        src = [r for r in block if r in source_ids]
        tgt = [r for r in block if r not in source_ids]
        pairs.update((a, b) for a in src for b in tgt)
    return pairs


class TestBipartiteCodec:
    def test_round_trip(self):
        src = np.array([0, 5, 123456, 2**31], dtype=np.int64)
        tgt = np.array([7, 0, 654321, 2**31 + 3], dtype=np.int64)
        keys = encode_bipartite_keys(src, tgt)
        lo, hi = decode_pair_keys(keys)
        assert np.array_equal(lo, src)
        assert np.array_equal(hi, tgt)

    def test_no_canonicalisation(self):
        # (3, 1) must stay (3, 1): the sides are disjoint id spaces.
        keys = encode_bipartite_keys(np.array([3]), np.array([1]))
        lo, hi = decode_pair_keys(keys)
        assert (lo[0], hi[0]) == (3, 1)

    def test_unique_sorted_and_deduped(self):
        src = np.array([2, 1, 2, 1, 0])
        tgt = np.array([3, 4, 3, 4, 9])
        keys = unique_bipartite_keys(src, tgt)
        assert keys.size == 3
        assert np.array_equal(keys, np.sort(keys))

    def test_unique_empty(self):
        keys = unique_bipartite_keys(np.empty(0), np.empty(0))
        assert keys.size == 0 and keys.dtype == np.uint64


class TestEnumerateCsrCrossPairs:
    def _brute(self, offsets, indices, mask):
        pairs = set()
        for g in range(len(offsets) - 1):
            members = indices[offsets[g] : offsets[g + 1]]
            src = [m for m in members if mask[m]]
            tgt = [m for m in members if not mask[m]]
            pairs.update((a, b) for a in src for b in tgt)
        return pairs

    def test_matches_brute_force(self):
        rng = rng_from_seed(5, "csr-cross")
        n = 40
        mask = np.array([rng.random() < 0.4 for _ in range(n)])
        indices, offsets = [], [0]
        for _ in range(12):
            members = rng.sample(range(n), rng.randint(0, 8))
            indices.extend(members)
            offsets.append(len(indices))
        offsets = np.array(offsets)
        indices = np.array(indices, dtype=np.int64)
        src, tgt = enumerate_csr_cross_pairs(offsets, indices, mask)
        assert mask[src].all() and not mask[tgt].any()
        got = set(zip(src.tolist(), tgt.tolist()))
        assert got == self._brute(offsets, indices, mask)

    def test_single_side_groups_emit_nothing(self):
        offsets = np.array([0, 3, 5])
        indices = np.array([0, 1, 2, 3, 4])
        all_source = np.array([True] * 5)
        src, tgt = enumerate_csr_cross_pairs(offsets, indices, all_source)
        assert src.size == 0 and tgt.size == 0

    def test_empty_layout(self):
        src, tgt = enumerate_csr_cross_pairs(
            np.array([0]), np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
        )
        assert src.size == 0 and tgt.size == 0


class TestLinkedCorpus:
    def _corpus(self):
        src = Dataset(
            [Record(f"s{i}", {"t": f"row {i}"}, entity_id=f"e{i}")
             for i in range(3)],
            name="left",
        )
        tgt = Dataset(
            [Record(f"t{i}", {"t": f"row {i}"}, entity_id=f"e{i % 2}")
             for i in range(4)],
            name="right",
        )
        return LinkedCorpus(src, tgt)

    def test_roles_coerced(self):
        linked = self._corpus()
        assert linked.source.role == "source"
        assert linked.target.role == "target"
        assert set(DATASET_ROLES) == {"single", "source", "target"}

    def test_invalid_role_rejected(self):
        with pytest.raises(DatasetError):
            Dataset([], role="probe")

    def test_overlapping_ids_rejected(self):
        shared = [Record("x1", {"t": "a"})]
        with pytest.raises(DatasetError, match="x1"):
            LinkedCorpus(Dataset(shared), Dataset(list(shared)))

    def test_union_source_first(self):
        linked = self._corpus()
        ids = [r.record_id for r in linked.union]
        assert ids == ["s0", "s1", "s2", "t0", "t1", "t2", "t3"]

    def test_side_of(self):
        linked = self._corpus()
        assert linked.side_of("s1") == "source"
        assert linked.side_of("t3") == "target"
        with pytest.raises(DatasetError):
            linked.side_of("nope")

    def test_total_pairs_is_cross_product(self):
        assert self._corpus().total_pairs == 3 * 4

    def test_true_matches_bipartite_only(self):
        linked = self._corpus()
        # e0 -> s0 x {t0, t2}; e1 -> s1 x {t1, t3}; e2 only on source.
        assert linked.true_matches == {
            ("s0", "t0"), ("s0", "t2"), ("s1", "t1"), ("s1", "t3"),
        }
        assert linked.num_true_matches == 4

    def test_keys_decode_to_pairs(self):
        linked = self._corpus()
        decoded = linked.pairs_from_keys(linked.true_match_keys)
        assert set(decoded) == linked.true_matches


@pytest.mark.parametrize("kind", BLOCKER_KINDS)
class TestBlockPair:
    def test_fig1_no_within_side_pairs(self, fig1, fig1_sf, kind):
        linked = _split(fig1, seed=2, name="fig1")
        result = _blocker(kind, "fig1", fig1_sf).block_pair(linked)
        assert isinstance(result, BipartiteBlockingResult)
        assert result.linked is linked
        for sid, tid in result.cross_pairs:
            assert linked.side_of(sid) == "source"
            assert linked.side_of(tid) == "target"

    def test_fig1_equals_filtered_union_oracle(self, fig1, fig1_sf, kind):
        linked = _split(fig1, seed=2, name="fig1")
        blocker = _blocker(kind, "fig1", fig1_sf)
        result = blocker.block_pair(linked)
        assert set(result.cross_pairs) == _oracle_cross_pairs(blocker, linked)
        assert result.cross_pairs == result.cross_pairs_legacy()

    def test_cora_equals_oracle_across_runtimes(self, cora_small, kind):
        linked = _split(cora_small, seed=9, name="cora")
        serial = _blocker(kind, "cora").block_pair(linked)
        oracle = _oracle_cross_pairs(_blocker(kind, "cora"), linked)
        assert set(serial.cross_pairs) == oracle
        sharded = _blocker(kind, "cora", processes=2).block_pair(linked)
        assert sharded.blocks == serial.blocks
        with ShardPool(2) as pool:
            pooled = _blocker(kind, "cora", processes=2, pool=pool).block_pair(
                linked
            )
        assert pooled.blocks == serial.blocks

    def test_two_datasets_equal_linked_corpus(self, fig1, fig1_sf, kind):
        linked = _split(fig1, seed=2, name="fig1")
        blocker = _blocker(kind, "fig1", fig1_sf)
        split = blocker.block_pair(linked.source, linked.target)
        assert split.blocks == blocker.block_pair(linked).blocks
        with pytest.raises(DatasetError):
            blocker.block_pair(linked, linked.target)

    def test_evaluate_linkage_engines_agree(self, cora_small, kind):
        linked = _split(cora_small, seed=9, name="cora")
        result = _blocker(kind, "cora").block_pair(linked)
        fast = evaluate_linkage(result)
        slow = evaluate_linkage(result, engine="legacy")
        assert fast == slow
        assert 0.0 <= fast.pc <= 1.0 and 0.0 <= fast.rr <= 1.0


class TestBipartiteResultShape:
    def test_cross_keys_decode_to_cross_pairs(self, fig1, fig1_sf):
        linked = _split(fig1, seed=2, name="fig1")
        result = _blocker("lsh", "fig1").block_pair(linked)
        decoded = set(linked.pairs_from_keys(result.cross_pair_keys))
        assert decoded == set(result.cross_pairs)

    def test_multiset_counts_cross_only(self, fig1):
        linked = _split(fig1, seed=2, name="fig1")
        result = _blocker("lsh", "fig1").block_pair(linked)
        src = linked.source_id_set
        expected = sum(
            sum(1 for r in b if r in src) * sum(1 for r in b if r not in src)
            for b in result.blocks
        )
        assert result.num_cross_multiset_comparisons == expected

    def test_as_bipartite_requires_linked(self, fig1):
        result = _blocker("lsh", "fig1").block(fig1)
        with pytest.raises(DatasetError):
            _ = as_bipartite(result, None)._require_linked()

    def test_evaluate_needs_a_corpus(self, fig1):
        result = _blocker("lsh", "fig1").block(fig1)
        with pytest.raises(EvaluationError):
            evaluate_linkage(result)


class TestLinkedCsv:
    def _linked(self):
        src = Dataset(
            [Record("a1", {"name": "ann"}, entity_id="e1")], name="acm"
        )
        tgt = Dataset(
            [Record("d1", {"name": "ann."}, entity_id="e1"),
             Record("d2", {"name": "bob"}, entity_id="e2")],
            name="dblp",
        )
        return LinkedCorpus(src, tgt)

    def test_round_trip(self, tmp_path):
        path = tmp_path / "linked.csv"
        write_linked_csv(self._linked(), path)
        back = read_linked_csv(path)
        assert back.source.name == "acm" and back.target.name == "dblp"
        assert list(back.source.record_ids) == ["a1"]
        assert list(back.target.record_ids) == ["d1", "d2"]
        assert back.target["d2"].get("name") == "bob"
        assert back.true_matches == {("a1", "d1")}

    def test_role_pinning_overrides_order(self, tmp_path):
        path = tmp_path / "linked.csv"
        write_linked_csv(self._linked(), path)
        flipped = read_linked_csv(path, source="dblp", target="acm")
        assert flipped.source.name == "dblp"
        assert len(flipped.source) == 2

    def _write(self, tmp_path, rows):
        path = tmp_path / "bad.csv"
        path.write_text(
            "record_id,dataset_id,entity_id,name\n" + "\n".join(rows) + "\n"
        )
        return path

    def test_missing_dataset_value_names_line(self, tmp_path):
        path = self._write(tmp_path, ["a1,acm,e1,ann", "d1,,e1,ann"])
        with pytest.raises(DatasetError, match="line 3"):
            read_linked_csv(path)

    def test_third_dataset_names_line(self, tmp_path):
        path = self._write(
            tmp_path, ["a1,acm,e1,ann", "d1,dblp,e1,ann", "x1,other,e2,bob"]
        )
        with pytest.raises(DatasetError, match="line 4"):
            read_linked_csv(path)

    def test_duplicate_id_names_both_lines(self, tmp_path):
        path = self._write(
            tmp_path, ["a1,acm,e1,ann", "a1,dblp,e1,ann"]
        )
        with pytest.raises(DatasetError, match="line 3.*line 2"):
            read_linked_csv(path)

    def test_single_dataset_rejected(self, tmp_path):
        path = self._write(tmp_path, ["a1,acm,e1,ann", "a2,acm,e1,ann"])
        with pytest.raises(DatasetError, match="exactly two"):
            read_linked_csv(path)

    def test_unknown_pinned_name_rejected(self, tmp_path):
        path = self._write(tmp_path, ["a1,acm,e1,ann", "d1,dblp,e1,ann"])
        with pytest.raises(DatasetError, match="nope"):
            read_linked_csv(path, source="nope")


class TestLinkageResolver:
    def _voter_linked(self):
        data = NCVoterLikeGenerator(num_records=240, seed=11).generate()
        dups = [r for r in data if r.record_id.startswith("d")]
        clean = [r for r in data if r.record_id.startswith("v")]
        return LinkedCorpus(
            Dataset(dups, name="dirty"), Dataset(clean, name="clean")
        )

    def _matcher(self):
        return SimilarityMatcher(
            {"first_name": "jaro_winkler", "last_name": "jaro_winkler",
             "city": "jaro_winkler"},
            match_threshold=0.9,
            possible_threshold=0.75,
        )

    def test_index_holds_target_probes_are_source(self):
        linked = self._voter_linked()
        blocker = LSHBlocker(
            ("first_name", "last_name", "city"), q=2, k=9, l=15, seed=3
        )
        resolver = Resolver.for_linkage(
            blocker, linked, matcher=self._matcher()
        )
        assert len(resolver) == len(linked.target)
        resolved = resolver.link()
        assert len(resolved) == len(linked.source)
        # Probes are never inserted: the target corpus is unchanged.
        assert len(resolver) == len(linked.target)
        by_tier = {}
        for entity in resolved:
            by_tier.setdefault(entity.tier, []).append(entity)
        assert len(by_tier.get("match", [])) > 0
        for entity in by_tier.get("match", []):
            assert entity.best_id in linked.target
        # Matched duplicates resolve to their own clean twin.
        truth = dict(linked.true_matches)
        hits = [e for e in by_tier.get("match", []) if e.record_id in truth]
        assert hits and all(
            truth[e.record_id] == e.best_id for e in hits
        )

    def test_salsh_linkage_encoder_matches_block_pair(self, fig1, fig1_sf):
        linked = _split(fig1, seed=2, name="fig1")
        blocker = _blocker("salsh", "fig1", fig1_sf)
        resolver = Resolver.for_linkage(blocker, linked)
        # The frozen encoder spans the union, exactly like block_pair.
        paired = blocker.block_pair(linked)
        assert len(resolver.index.encoder.bits) == (
            paired.metadata["num_semantic_bits"]
        )

    def test_link_without_corpus_needs_records(self, fig1):
        blocker = _blocker("lsh", "fig1")
        resolver = Resolver(blocker, fig1)
        with pytest.raises(ConfigurationError):
            resolver.link()
        assert resolver.link(list(fig1)[:2])
