"""Tests for seeded randomness helpers."""

from repro.utils.rand import derive_seed, rng_from_seed


def test_derive_seed_is_deterministic():
    assert derive_seed(42, "minhash") == derive_seed(42, "minhash")


def test_derive_seed_depends_on_label():
    assert derive_seed(42, "minhash") != derive_seed(42, "semhash")


def test_derive_seed_depends_on_parent_seed():
    assert derive_seed(1, "x") != derive_seed(2, "x")


def test_derive_seed_multiple_parts_order_matters():
    assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")


def test_derive_seed_is_63_bit_non_negative():
    for seed in range(20):
        value = derive_seed(seed, "part")
        assert 0 <= value < (1 << 63)


def test_rng_from_seed_reproducible_streams():
    rng1 = rng_from_seed(7, "stream")
    rng2 = rng_from_seed(7, "stream")
    assert [rng1.random() for _ in range(5)] == [rng2.random() for _ in range(5)]


def test_rng_from_seed_independent_streams_differ():
    rng1 = rng_from_seed(7, "a")
    rng2 = rng_from_seed(7, "b")
    assert [rng1.random() for _ in range(5)] != [rng2.random() for _ in range(5)]


def test_derive_seed_handles_non_string_parts():
    assert derive_seed(1, 5, 2.0, True) == derive_seed(1, 5, 2.0, True)
