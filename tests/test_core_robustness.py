"""Tests for γ-robustness estimation and §3 region classification."""

import pytest

from repro.core.robustness import (
    SimilarityBin,
    classify_region,
    estimate_gamma,
    match_probability_curve,
)
from repro.errors import EvaluationError


def labelled(*points):
    return list(points)


class TestMatchProbabilityCurve:
    def test_bins_partition_unit_interval(self):
        curve = match_probability_curve([(0.05, True), (0.95, False)], num_bins=10)
        assert len(curve) == 10
        assert curve[0].lo == 0.0 and curve[-1].hi == 1.0

    def test_counts_and_matches(self):
        curve = match_probability_curve(
            [(0.05, True), (0.07, False), (0.95, True)], num_bins=10
        )
        assert curve[0].count == 2 and curve[0].matches == 1
        assert curve[9].count == 1 and curve[9].matches == 1

    def test_similarity_one_lands_in_last_bin(self):
        curve = match_probability_curve([(1.0, True)], num_bins=4)
        assert curve[3].count == 1

    def test_match_probability(self):
        bin_ = SimilarityBin(0.0, 0.1, count=4, matches=1)
        assert bin_.match_probability == 0.25

    def test_empty_bin_probability_zero(self):
        assert SimilarityBin(0.0, 0.1, 0, 0).match_probability == 0.0

    def test_out_of_range_similarity_raises(self):
        with pytest.raises(EvaluationError):
            match_probability_curve([(1.5, True)])

    def test_invalid_bins_raises(self):
        with pytest.raises(EvaluationError):
            match_probability_curve([], num_bins=0)


class TestEstimateGamma:
    def test_perfectly_monotone_curve_gamma_one(self):
        samples = [(0.1, False)] * 50 + [(0.9, True)] * 50
        curve = match_probability_curve(samples)
        assert estimate_gamma(curve) == 1.0

    def test_violation_reduces_gamma(self):
        # High probability at low similarity, low at high similarity.
        samples = [(0.05, True)] * 10 + [(0.95, False)] * 10
        curve = match_probability_curve(samples)
        gamma = estimate_gamma(curve)
        assert gamma == pytest.approx(1.0 - 0.9)

    def test_tolerance_forgives_small_dips(self):
        samples = (
            [(0.1, False)] * 9 + [(0.1, True)]  # p = 0.1
            + [(0.9, True)] * 19 + [(0.9, False)]  # p = 0.95 < dip below
        )
        curve = match_probability_curve(samples)
        assert estimate_gamma(curve, tolerance=0.2) == 1.0

    def test_min_count_ignores_sparse_bins(self):
        samples = [(0.05, True)] + [(0.95, False)] * 100
        curve = match_probability_curve(samples)
        assert estimate_gamma(curve, min_count=10) == 1.0

    def test_gamma_in_unit_interval(self):
        samples = [(i / 100, i % 3 == 0) for i in range(100)]
        curve = match_probability_curve(samples)
        assert 0.0 <= estimate_gamma(curve) <= 1.0


class TestClassifyRegion:
    def test_three_regions(self):
        assert classify_region(0.1, 0.3, 0.6) == "high"
        assert classify_region(0.5, 0.3, 0.6) == "uncertain"
        assert classify_region(0.7, 0.3, 0.6) == "low"

    def test_boundaries(self):
        assert classify_region(0.3, 0.3, 0.6) == "high"
        assert classify_region(0.6, 0.3, 0.6) == "uncertain"

    def test_invalid_thresholds(self):
        with pytest.raises(EvaluationError):
            classify_region(0.5, 0.7, 0.3)
