"""Streamed SA-LSH: sample-frozen encoder + slab streaming (DESIGN.md,
"Process-sharded streaming runtime").

The contract extends the PR 2 streaming guarantee to the semantic
blocker: with an encoder frozen from the full corpus,
``SALSHBlocker.block_stream`` must produce blocks byte-identical to
:meth:`block` for any slab layout (including slab=1 and a single slab
larger than the corpus) and any spill target. With an encoder fitted on
a small sample the bit set may shrink; recall must stay within
tolerance of the full-corpus configuration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SALSHBlocker
from repro.errors import ConfigurationError
from repro.evaluation import evaluate_blocks
from repro.minhash import GrowableSignatureSpill, open_signature_memmap
from repro.semantic import (
    PatternSemanticFunction,
    SemhashEncoder,
    VoterSemanticFunction,
    cora_patterns,
    recommended_sample_size,
)
from repro.taxonomy.builders import bibliographic_tree

VOTER_ATTRS = ("first_name", "last_name")
CORA_ATTRS = ("authors", "title")

#: Allowed pair-completeness dip of a 10%-sample-frozen encoder vs the
#: full-corpus bit set (sample bit sets are subsets; a missing rare
#: concept can only drop gated collisions for records relying on it).
SAMPLE_PC_TOLERANCE = 0.05


def _slabs(records, size):
    return (records[i : i + size] for i in range(0, len(records), size))


def _cora_sf():
    return PatternSemanticFunction(bibliographic_tree(), cora_patterns())


def _cora_blocker(**kw):
    return SALSHBlocker(
        CORA_ATTRS, q=3, k=3, l=6, seed=3,
        semantic_function=_cora_sf(), w=2, mode="or", **kw,
    )


def _voter_blocker(**kw):
    return SALSHBlocker(
        VOTER_ATTRS, q=2, k=3, l=5, seed=3,
        semantic_function=VoterSemanticFunction(), w=2, mode="or", **kw,
    )


class TestFrozenEncoder:
    def test_fit_equals_constructor(self, voter_small):
        records = list(voter_small)
        fitted = SemhashEncoder.fit(VoterSemanticFunction(), records[:50])
        direct = SemhashEncoder(VoterSemanticFunction(), records[:50])
        assert fitted.bits == direct.bits

    def test_encoding_unseen_records_does_not_mutate(self, voter_small):
        records = list(voter_small)
        encoder = SemhashEncoder.fit(VoterSemanticFunction(), records[:20])
        bits_before = encoder.bits
        num_bits_before = encoder.num_bits
        matrix = encoder.signature_matrix(records[20:])
        assert matrix.shape == (len(records) - 20, num_bits_before)
        assert encoder.bits == bits_before
        assert encoder.num_bits == num_bits_before
        # Unseen leaves outside C are dropped, never appended.
        for record in records[20:40]:
            assert encoder.encode(record).shape == (num_bits_before,)

    def test_sample_bits_subset_of_full(self, cora_small):
        records = list(cora_small)
        full = SemhashEncoder(_cora_sf(), cora_small)
        sample = SemhashEncoder.fit(_cora_sf(), records[: len(records) // 10])
        assert set(sample.bits) <= set(full.bits)
        assert sample.num_bits < full.num_bits

    def test_from_interpretations_matches_records(self, voter_small):
        sf = VoterSemanticFunction()
        zetas = {r.record_id: sf.interpret(r) for r in voter_small}
        from_zetas = SemhashEncoder.from_interpretations(sf, zetas)
        from_records = SemhashEncoder(sf, voter_small)
        assert from_zetas.bits == from_records.bits
        assert np.array_equal(
            from_zetas.signature_matrix(voter_small),
            from_records.signature_matrix(voter_small),
        )


class TestStreamedEqualsBatch:
    @pytest.mark.parametrize("slab_size", [1, 3, 100])
    def test_fig1_all_slab_sizes(self, fig1, fig1_sf, slab_size):
        # slab=1 streams record by record; slab=100 exceeds the 6-record
        # corpus, so the whole dataset arrives as one oversized slab.
        blocker = SALSHBlocker(
            ("title", "authors"), q=3, k=2, l=3, seed=1,
            semantic_function=fig1_sf, w="all", mode="or",
        )
        reference = blocker.block(fig1)
        encoder = SemhashEncoder(fig1_sf, fig1)
        streamed = blocker.block_stream(
            _slabs(list(fig1), slab_size), encoder=encoder
        )
        assert streamed.blocks == reference.blocks
        assert streamed.metadata["engine"] == "streaming"

    @pytest.mark.parametrize("slab_size", [37, 1000])
    def test_cora_slab_sizes(self, cora_small, slab_size):
        blocker = _cora_blocker()
        reference = blocker.block(cora_small)
        encoder = SemhashEncoder(_cora_sf(), cora_small)
        streamed = blocker.block_stream(
            _slabs(list(cora_small), slab_size), encoder=encoder
        )
        assert streamed.blocks == reference.blocks

    def test_voter_with_fixed_memmap_spill(self, tmp_path, voter_small):
        blocker = _voter_blocker(workers=2)
        reference = blocker.block(voter_small)
        signatures = open_signature_memmap(
            tmp_path / "salsh.npy", len(voter_small), 3 * 5
        )
        streamed = blocker.block_stream(
            _slabs(list(voter_small), 97),
            encoder=SemhashEncoder(VoterSemanticFunction(), voter_small),
            signatures_out=signatures,
        )
        assert streamed.blocks == reference.blocks
        assert streamed.metadata["spilled"] is True
        corpus = blocker.shingler.shingle_corpus(voter_small)
        assert np.array_equal(
            np.asarray(signatures), blocker.hasher.signature_matrix(corpus)
        )

    def test_voter_generator_with_growable_spill(self, tmp_path, voter_small):
        # A plain generator of slabs — nothing may call len() on it —
        # spilling through the growable file.
        blocker = _voter_blocker()
        reference = blocker.block(voter_small)
        spill = GrowableSignatureSpill(tmp_path / "salsh-grow.npy", 3 * 5)
        records = list(voter_small)
        streamed = blocker.block_stream(
            _slabs(records, 111),
            encoder=SemhashEncoder(VoterSemanticFunction(), voter_small),
            signatures_out=spill,
        )
        assert streamed.blocks == reference.blocks
        matrix = spill.finalize()
        corpus = blocker.shingler.shingle_corpus(voter_small)
        assert np.array_equal(
            np.asarray(matrix), blocker.hasher.signature_matrix(corpus)
        )


class TestSampleSizeRule:
    """The principled sample-size rule: m >= ln(1/delta) / p, floored
    and capped at the population (DESIGN.md)."""

    def test_size_formula(self):
        # Defaults p = delta = 0.01: ceil(ln(100) / 0.01) = 461,
        # independent of how large the population is.
        assert recommended_sample_size(100_000) == 461
        assert recommended_sample_size(10_000_000) == 461
        # Rarer concepts need proportionally more records.
        assert recommended_sample_size(100_000, min_frequency=0.001) == 4606
        # The floor wins when the formula asks for less...
        assert recommended_sample_size(100_000, min_frequency=0.05) == 256
        # ...and the population caps everything.
        assert recommended_sample_size(100) == 100
        assert recommended_sample_size(300) == 300
        assert recommended_sample_size(0) == 0

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            recommended_sample_size(10, min_frequency=0.0)
        with pytest.raises(ConfigurationError):
            recommended_sample_size(10, min_frequency=1.5)
        with pytest.raises(ConfigurationError):
            recommended_sample_size(10, miss_probability=1.0)
        with pytest.raises(ConfigurationError):
            recommended_sample_size(10, miss_probability=0.0)

    def test_fit_sampled_deterministic(self, voter_small):
        records = list(voter_small)
        first = SemhashEncoder.fit_sampled(
            VoterSemanticFunction(), records, seed=5
        )
        second = SemhashEncoder.fit_sampled(
            VoterSemanticFunction(), records, seed=5
        )
        assert first.bits == second.bits

    def test_small_population_uses_everything(self, cora_small):
        # 300 records < the 461 the rule asks for: the whole corpus is
        # the sample, so the frozen bit set equals the full encoder's.
        sampled = SemhashEncoder.fit_sampled(_cora_sf(), list(cora_small))
        full = SemhashEncoder(_cora_sf(), cora_small)
        assert sampled.bits == full.bits

    def test_sampled_recall_within_tolerance(self, voter_small):
        records = list(voter_small)
        blocker = _voter_blocker()
        full_metrics = evaluate_blocks(blocker.block(voter_small), voter_small)
        encoder = SemhashEncoder.fit_sampled(
            VoterSemanticFunction(), records, seed=1
        )
        streamed = blocker.block_stream(_slabs(records, 100), encoder=encoder)
        metrics = evaluate_blocks(streamed, voter_small)
        assert metrics.pc >= full_metrics.pc - SAMPLE_PC_TOLERANCE


class TestSampleFrozenRecall:
    def test_ten_percent_sample_within_tolerance(self, cora_small):
        records = list(cora_small)
        blocker = _cora_blocker()
        full_metrics = evaluate_blocks(blocker.block(cora_small), cora_small)
        sample = SemhashEncoder.fit(_cora_sf(), records[: len(records) // 10])
        streamed = blocker.block_stream(
            _slabs(records, 50), encoder=sample
        )
        sample_metrics = evaluate_blocks(streamed, cora_small)
        assert sample_metrics.pc >= full_metrics.pc - SAMPLE_PC_TOLERANCE

    def test_ten_percent_sample_voter(self, voter_small):
        records = list(voter_small)
        blocker = _voter_blocker()
        full_metrics = evaluate_blocks(blocker.block(voter_small), voter_small)
        sample = SemhashEncoder.fit(
            VoterSemanticFunction(), records[: len(records) // 10]
        )
        streamed = blocker.block_stream(_slabs(records, 100), encoder=sample)
        sample_metrics = evaluate_blocks(streamed, voter_small)
        assert sample_metrics.pc >= full_metrics.pc - SAMPLE_PC_TOLERANCE
