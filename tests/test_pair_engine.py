"""Equivalence suite for the array-backed candidate-pair engine.

Asserts the array paths — pair enumeration, the PC/PQ/RR/FM metrics,
every meta-blocking weighting scheme, every pruning policy, and the
batch matcher — are value-identical to the legacy per-pair Python paths
on the paper's Fig. 1 records, a Cora-like slice, and a seeded
NCVoterLike slice, plus handcrafted edge cases (duplicate ids inside a
block, empty results, foreign ids).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LSHBlocker
from repro.core.base import BlockingResult
from repro.datasets import CoraLikeGenerator, NCVoterLikeGenerator, fig1_dataset
from repro.er import SimilarityMatcher
from repro.errors import DatasetError, EvaluationError
from repro.evaluation import evaluate_blocks
from repro.evaluation.objective import blocking_objective
from repro.metablocking import (
    PRUNING_ALGORITHMS,
    WEIGHT_SCHEMES,
    build_array_graph,
    build_blocking_graph,
    compute_weights,
    prune,
    prune_array,
    run_metablocking,
)
from repro.records import Dataset, Record
from repro.records.ground_truth import sorted_pair
from repro.records.pairs import (
    decode_pair_keys,
    encode_pair_keys,
    enumerate_csr_pairs,
    pairs_from_keys,
    unique_pair_keys,
)


@pytest.fixture(scope="module")
def cora_slice() -> Dataset:
    return CoraLikeGenerator(num_records=260, num_entities=40, seed=11).generate()


@pytest.fixture(scope="module")
def voter_slice() -> Dataset:
    return NCVoterLikeGenerator(num_records=420, seed=23).generate()


def _blocked(dataset: Dataset, attributes: tuple[str, ...]) -> BlockingResult:
    return LSHBlocker(attributes, q=2, k=3, l=8, seed=5).block(dataset)


@pytest.fixture(scope="module")
def corpora(cora_slice, voter_slice) -> list[tuple[Dataset, BlockingResult]]:
    """(dataset, blocking result) per benchmark corpus."""
    fig1 = fig1_dataset()
    return [
        (fig1, _blocked(fig1, ("title", "authors"))),
        (cora_slice, _blocked(cora_slice, ("authors", "title"))),
        (voter_slice, _blocked(voter_slice, ("first_name", "last_name"))),
    ]


#: Handcrafted results covering redundancy, within-block duplicate ids,
#: self-only blocks and the empty collection.
EDGE_RESULTS = (
    BlockingResult("overlap", (("a", "b", "c"), ("a", "b"), ("c", "d"))),
    BlockingResult("dups", (("a", "a", "b"), ("b", "c"), ("b", "c"), ("w", "x", "y", "z"))),
    BlockingResult("selfonly", (("a", "a"),)),
    BlockingResult("empty", ()),
)


class TestPairKeys:
    def test_roundtrip(self):
        left = np.array([3, 0, 7, 7], dtype=np.int64)
        right = np.array([1, 9, 2, 8], dtype=np.int64)
        keys = encode_pair_keys(left, right)
        lo, hi = decode_pair_keys(keys)
        assert (lo == np.minimum(left, right)).all()
        assert (hi == np.maximum(left, right)).all()

    def test_key_order_is_pair_order(self):
        # Numeric key order == lexicographic order of (lo, hi) tuples.
        keys = unique_pair_keys(
            np.array([2, 0, 1, 0]), np.array([3, 1, 2, 2])
        )
        lo, hi = decode_pair_keys(keys)
        tuples = list(zip(lo.tolist(), hi.tolist()))
        assert tuples == sorted(tuples)

    def test_enumerate_drops_self_pairs(self):
        offsets = np.array([0, 3], dtype=np.int64)
        indices = np.array([4, 4, 5], dtype=np.int32)
        left, right = enumerate_csr_pairs(offsets, indices)
        assert list(zip(left.tolist(), right.tolist())) == [(4, 5), (4, 5)]
        # (4,5) kept once per slot pair, the (4,4) self-pair dropped.

    def test_enumerate_group_ids(self):
        offsets = np.array([0, 2, 2, 5], dtype=np.int64)
        indices = np.array([0, 1, 2, 3, 4], dtype=np.int32)
        left, right, groups = enumerate_csr_pairs(
            offsets, indices, with_group_ids=True
        )
        by_group = sorted(zip(groups.tolist(), left.tolist(), right.tolist()))
        assert by_group == [(0, 0, 1), (2, 2, 3), (2, 2, 4), (2, 3, 4)]


class TestDatasetCodec:
    def test_encode_decode_roundtrip(self, voter_slice):
        ids = voter_slice.record_ids[10:40]
        encoded = voter_slice.encode_ids(ids)
        assert encoded.dtype == np.int32
        assert voter_slice.decode_ids(encoded) == ids

    def test_index_of(self, voter_slice):
        rid = voter_slice.record_ids[7]
        assert voter_slice.index_of(rid) == 7

    def test_unknown_id_raises(self, voter_slice):
        with pytest.raises(DatasetError):
            voter_slice.encode_ids(["nope"])
        with pytest.raises(DatasetError):
            voter_slice.index_of("nope")

    def test_true_match_keys_equal_legacy_set(self, corpora):
        for dataset, _ in corpora:
            decoded = {
                sorted_pair(*pair)
                for pair in pairs_from_keys(
                    dataset.true_match_keys, dataset.decode_ids(range(len(dataset)))
                )
            }
            assert decoded == dataset.true_matches
            assert dataset.num_true_matches == len(dataset.true_matches)

    def test_true_match_keys_cached(self, voter_slice):
        assert voter_slice.true_match_keys is voter_slice.true_match_keys


class TestPairEnumeration:
    def test_distinct_pairs_match_legacy(self, corpora):
        for _, result in corpora:
            assert result.distinct_pairs == result.distinct_pairs_legacy()

    def test_edge_results_match_legacy(self):
        for result in EDGE_RESULTS:
            assert result.distinct_pairs == result.distinct_pairs_legacy()

    def test_pair_keys_decode_to_distinct_pairs(self, corpora):
        for dataset, result in corpora:
            keys = result.pair_keys(dataset)
            assert keys.dtype == np.uint64
            assert (np.diff(keys.astype(np.int64)) > 0).all()  # sorted unique
            decoded = {
                sorted_pair(*pair)
                for pair in pairs_from_keys(
                    keys, dataset.decode_ids(range(len(dataset)))
                )
            }
            assert decoded == set(result.distinct_pairs)

    def test_pair_keys_cached_per_dataset(self, corpora):
        dataset, result = corpora[0]
        assert result.pair_keys(dataset) is result.pair_keys(dataset)

    def test_pair_keys_foreign_id_raises(self, voter_slice):
        with pytest.raises(DatasetError):
            BlockingResult("bad", (("ghost-1", "ghost-2"),)).pair_keys(voter_slice)


class TestMetricsEquivalence:
    def test_metrics_identical(self, corpora):
        for dataset, result in corpora:
            array_metrics = evaluate_blocks(result, dataset)
            legacy_metrics = evaluate_blocks(result, dataset, engine="legacy")
            assert array_metrics == legacy_metrics

    def test_unknown_record_is_evaluation_error(self, voter_slice):
        bad = BlockingResult("bad", ((voter_slice.record_ids[0], "zzz"),))
        with pytest.raises(EvaluationError):
            evaluate_blocks(bad, voter_slice)
        with pytest.raises(EvaluationError):
            evaluate_blocks(bad, voter_slice, engine="legacy")

    def test_unknown_engine(self, voter_slice):
        with pytest.raises(EvaluationError):
            evaluate_blocks(
                BlockingResult("x", ()), voter_slice, engine="quantum"
            )

    def test_objective_matches_legacy_sets(self, corpora):
        for dataset, result in corpora:
            value = blocking_objective(result, dataset, epsilon=0.2)
            candidates = result.distinct_pairs_legacy()
            tp = len(candidates & dataset.true_matches)
            expected_share = (
                (len(candidates) - tp) / len(candidates) if candidates else 0.0
            )
            assert value.non_match_share == pytest.approx(expected_share)
            assert value.match_loss == pytest.approx(
                1.0 - tp / len(dataset.true_matches)
            )

    def test_objective_foreign_ids_fall_back(self, voter_slice):
        known = voter_slice.record_ids[0]
        foreign = BlockingResult("f", ((known, "ghost"),))
        value = blocking_objective(foreign, voter_slice, epsilon=1.0)
        assert value.non_match_share == 1.0  # the foreign pair is no TP


class TestMetaBlockingEquivalence:
    def _graph_pairs(self, result):
        graph = build_array_graph(result)
        return graph, pairs_from_keys(graph.edge_keys, graph.ids)

    @pytest.mark.parametrize("scheme", WEIGHT_SCHEMES)
    def test_weights_bitwise_identical(self, scheme, corpora):
        for _, result in list(corpora) + [(None, r) for r in EDGE_RESULTS]:
            graph, edge_pairs = self._graph_pairs(result)
            weights = compute_weights(graph, scheme)
            legacy = build_blocking_graph(result, scheme)
            assert dict(zip(edge_pairs, weights.tolist())) == legacy.edges

    @pytest.mark.parametrize("scheme", WEIGHT_SCHEMES)
    @pytest.mark.parametrize("algorithm", PRUNING_ALGORITHMS)
    def test_pruning_identical(self, scheme, algorithm, corpora):
        for _, result in list(corpora) + [(None, r) for r in EDGE_RESULTS]:
            graph = build_array_graph(result)
            weights = compute_weights(graph, scheme)
            kept_array = set(
                pairs_from_keys(prune_array(graph, weights, algorithm), graph.ids)
            )
            legacy = build_blocking_graph(result, scheme)
            assert kept_array == prune(legacy, algorithm)

    def test_run_metablocking_engines_identical(self, corpora):
        for _, result in corpora:
            for scheme in ("CBS", "ARCS"):
                for algorithm in PRUNING_ALGORITHMS:
                    array_run = run_metablocking(result, scheme, algorithm)
                    legacy_run = run_metablocking(
                        result, scheme, algorithm, engine="legacy"
                    )
                    assert array_run.blocks == legacy_run.blocks
                    assert array_run.metadata["engine"] == "array"

    def test_degree_derived_once(self):
        result = EDGE_RESULTS[0]
        graph = build_blocking_graph(result, "CBS")
        brute = {
            rid: sum(1 for a, b in graph.edges if rid in (a, b))
            for rid in graph.block_ids_of
        }
        assert {rid: graph.degree(rid) for rid in brute} == brute
        assert graph.degrees is graph.degrees  # cached, not rescanned
        assert graph.degree("ghost") == 0

    def test_incidence_csr_matches_record_block_ids(self, corpora):
        for _, result in corpora:
            graph = build_array_graph(result)
            legacy_assignment = result.record_block_ids()
            for position, rid in enumerate(graph.ids):
                start = graph.record_block_offsets[position]
                stop = graph.record_block_offsets[position + 1]
                assert (
                    graph.record_block_ids[start:stop].tolist()
                    == sorted(legacy_assignment[rid])
                )


class TestBatchMatcher:
    MATCHERS = (
        {"first_name": "jaccard_q2", "last_name": "exact"},
        {"first_name": "jaro_winkler", "last_name": "jaccard_q3"},
    )

    def _pairs(self, result):
        return sorted(result.distinct_pairs)

    def test_scores_bitwise_identical(self, voter_slice):
        result = _blocked(voter_slice, ("first_name", "last_name"))
        pairs = self._pairs(result)
        assert pairs
        for config in self.MATCHERS:
            matcher = SimilarityMatcher(config, match_threshold=0.9)
            batch = matcher.score_pairs(voter_slice, pairs)
            loop = np.array([matcher.score(voter_slice, p) for p in pairs])
            assert (batch == loop).all()

    def test_decisions_identical(self, cora_slice):
        result = _blocked(cora_slice, ("authors", "title"))
        pairs = self._pairs(result)
        matcher = SimilarityMatcher(
            {"title": "jaccard_q3", "authors": "exact"},
            weights={"title": 3.0, "authors": 1.0},
            match_threshold=0.8,
            possible_threshold=0.5,
        )
        assert matcher.match_pairs(cora_slice, pairs) == matcher.match_pairs(
            cora_slice, pairs, batch=False
        )

    def test_matches_identical(self, voter_slice):
        result = _blocked(voter_slice, ("first_name", "last_name"))
        pairs = self._pairs(result)
        matcher = SimilarityMatcher(
            {"first_name": "jaccard_q2", "last_name": "jaccard_q2"},
            match_threshold=0.75,
        )
        batch_matches = matcher.matches(voter_slice, pairs)
        legacy_matches = {
            d.pair
            for d in matcher.match_pairs(voter_slice, pairs, batch=False)
            if d.label == "match"
        }
        assert batch_matches == legacy_matches

    def test_empty_and_missing_attributes(self):
        dataset = Dataset(
            [
                Record("a", {"name": ""}),
                Record("b", {}),
                Record("c", {"name": "x"}),
            ]
        )
        matcher = SimilarityMatcher({"name": "jaccard_q2"})
        pairs = [("a", "b"), ("a", "c"), ("b", "c")]
        batch = matcher.score_pairs(dataset, pairs)
        loop = [matcher.score(dataset, p) for p in pairs]
        assert batch.tolist() == loop
        assert batch[0] == 1.0  # empty vs missing: both empty gram sets
