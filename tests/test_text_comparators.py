"""Tests for the string comparators (edit, Jaro, LCS, TF-IDF, registry)."""

import pytest

from repro.errors import ConfigurationError
from repro.text import (
    TfidfVectorizer,
    available_similarities,
    cosine_similarity,
    edit_distance,
    edit_distances,
    edit_similarities,
    edit_similarity,
    get_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    lcs_similarity,
    longest_common_substring,
)


class TestEditDistance:
    def test_kitten_sitting(self):
        assert edit_distance("kitten", "sitting") == 3

    def test_identical(self):
        assert edit_distance("abc", "abc") == 0

    def test_empty_vs_string(self):
        assert edit_distance("", "abc") == 3
        assert edit_distance("abc", "") == 3

    def test_symmetry(self):
        assert edit_distance("flaw", "lawn") == edit_distance("lawn", "flaw")

    def test_single_substitution(self):
        assert edit_distance("cat", "car") == 1

    def test_similarity_normalised(self):
        assert edit_similarity("abc", "abc") == 1.0
        assert edit_similarity("", "") == 1.0
        assert edit_similarity("abc", "xyz") == 0.0

    def test_similarity_partial(self):
        assert edit_similarity("abcd", "abcx") == pytest.approx(0.75)


class TestEditDistanceBatch:
    """The vectorized banded-DP kernel vs the per-pair reference."""

    def _random_pairs(self, count=250):
        import random

        rng = random.Random(99)
        alphabet = "abcdef é字X"
        pairs = [
            (
                "".join(rng.choice(alphabet) for _ in range(rng.randrange(0, 11))),
                "".join(rng.choice(alphabet) for _ in range(rng.randrange(0, 11))),
            )
            for _ in range(count)
        ]
        pairs += [("kitten", "sitting"), ("", ""), ("", "abc"), ("abc", "")]
        return pairs

    def test_matches_per_pair_reference(self):
        pairs = self._random_pairs()
        lefts = [a for a, _ in pairs]
        rights = [b for _, b in pairs]
        batch = edit_distances(lefts, rights)
        assert batch.tolist() == [edit_distance(a, b) for a, b in pairs]

    def test_banded_exact_within_band(self):
        pairs = self._random_pairs()
        lefts = [a for a, _ in pairs]
        rights = [b for _, b in pairs]
        exact = edit_distances(lefts, rights)
        for band in (0, 1, 2, 4):
            banded = edit_distances(lefts, rights, band=band)
            for true, got in zip(exact.tolist(), banded.tolist()):
                if true <= band:
                    assert got == true
                else:
                    assert got > band

    def test_similarities_bitwise_match(self):
        pairs = self._random_pairs()
        lefts = [a for a, _ in pairs]
        rights = [b for _, b in pairs]
        batch = edit_similarities(lefts, rights)
        assert batch.tolist() == [edit_similarity(a, b) for a, b in pairs]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            edit_distances(["a"], ["b", "c"])

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError):
            edit_distances(["a"], ["b"], band=-1)


class TestJaro:
    def test_martha_marhta(self):
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-4)

    def test_identical(self):
        assert jaro_similarity("same", "same") == 1.0

    def test_no_common_characters(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_empty(self):
        assert jaro_similarity("", "abc") == 0.0

    def test_winkler_boosts_common_prefix(self):
        plain = jaro_similarity("prefixes", "prefixed")
        winkler = jaro_winkler_similarity("prefixes", "prefixed")
        assert winkler > plain

    def test_winkler_bounded_by_one(self):
        assert jaro_winkler_similarity("dwayne", "duane") <= 1.0

    def test_winkler_invalid_weight(self):
        with pytest.raises(ValueError):
            jaro_winkler_similarity("a", "b", prefix_weight=0.5)

    def test_winkler_dixon_reference(self):
        assert jaro_winkler_similarity("dixon", "dicksonx") == pytest.approx(
            0.8133, abs=1e-3
        )


class TestLCS:
    def test_longest_common_substring(self):
        assert longest_common_substring("xabcy", "zabcw") == "abc"

    def test_no_overlap(self):
        assert longest_common_substring("abc", "xyz") == ""

    def test_empty(self):
        assert longest_common_substring("", "abc") == ""

    def test_similarity_identical(self):
        assert lcs_similarity("entity", "entity") == 1.0

    def test_similarity_rejects_tiny_fragments(self):
        # Only 1-char overlaps, below min_common_len=2.
        assert lcs_similarity("ab", "bx") == 0.0

    def test_similarity_accumulates_pieces(self):
        # "abcd" and "cdab" share "ab" and "cd".
        assert lcs_similarity("abcd", "cdab") == 1.0

    def test_similarity_in_unit_interval(self):
        value = lcs_similarity("blocking keys", "black kings")
        assert 0.0 <= value <= 1.0


class TestTfidf:
    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TfidfVectorizer().transform(["a"])

    def test_identical_documents_cosine_one(self):
        vec = TfidfVectorizer().fit([["a", "b"], ["c"]])
        v = vec.transform(["a", "b"])
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_disjoint_documents_cosine_zero(self):
        vec = TfidfVectorizer().fit([["a"], ["b"]])
        assert cosine_similarity(vec.transform(["a"]), vec.transform(["b"])) == 0.0

    def test_rare_tokens_weigh_more(self):
        corpus = [["common", "rare"], ["common"], ["common"], ["common"]]
        vec = TfidfVectorizer().fit(corpus)
        weights = vec.transform(["common", "rare"])
        assert weights["rare"] > weights["common"]

    def test_vectors_l2_normalised(self):
        vec = TfidfVectorizer().fit([["a", "b", "c"]])
        v = vec.transform(["a", "b"])
        assert sum(w * w for w in v.values()) == pytest.approx(1.0)

    def test_empty_document_vector(self):
        vec = TfidfVectorizer().fit([["a"]])
        assert vec.transform([]) == {}


class TestRegistry:
    def test_known_names(self):
        names = available_similarities()
        for expected in ("jaro_winkler", "edit", "bigram", "lcs"):
            assert expected in names

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            get_similarity("nope")

    def test_all_registered_functions_in_unit_interval(self):
        for name in available_similarities():
            fn = get_similarity(name)
            for s1, s2 in (("wang", "wang"), ("wang", "wong"), ("a", "zz")):
                assert 0.0 <= fn(s1, s2) <= 1.0, (name, s1, s2)

    def test_exact(self):
        exact = get_similarity("exact")
        assert exact("x", "x") == 1.0
        assert exact("x", "y") == 0.0
