"""Tests for the end-to-end pipeline (tune -> gate -> block -> evaluate)."""

import pytest

from repro.core.pipeline import PipelineConfig, run_pipeline, tune_from_dataset
from repro.errors import ConfigurationError
from repro.records import Dataset, Record
from repro.semantic import PatternSemanticFunction, cora_patterns
from repro.taxonomy.builders import bibliographic_tree


CONFIG = PipelineConfig(attributes=("authors", "title"), q=3, seed=5)


class TestTuning:
    def test_tuning_requires_ground_truth(self):
        unlabelled = Dataset([Record("a", {"title": "x"}), Record("b", {"title": "y"})])
        with pytest.raises(ConfigurationError):
            tune_from_dataset(unlabelled, CONFIG)

    def test_tuned_parameters_valid(self, cora_small):
        params = tune_from_dataset(cora_small, CONFIG)
        assert params.k >= 1
        assert params.l >= 1
        assert 0.0 < params.sl < params.sh <= 1.0


class TestPipeline:
    def test_lsh_pipeline_without_semantics(self, cora_small):
        report = run_pipeline(cora_small, CONFIG)
        assert report.gate is None
        assert report.feature_quality is None
        assert report.metrics.pc > 0.5
        assert report.outcome.blocker_name == "LSH"

    def test_salsh_pipeline_auto_gate(self, cora_small, tbib):
        fn = PatternSemanticFunction(tbib, cora_patterns())
        report = run_pipeline(cora_small, CONFIG, semantic_function=fn)
        assert report.gate is not None
        mode, _ = report.gate
        # Cora's noisy features must trigger an OR gate (§5.3 step iii).
        assert mode == "or"
        assert report.feature_quality is not None
        assert report.outcome.blocker_name == "SA-LSH"

    def test_pinned_gate_overrides_recommendation(self, cora_small, tbib):
        fn = PatternSemanticFunction(tbib, cora_patterns())
        config = PipelineConfig(
            attributes=("authors", "title"), q=3, seed=5, w=2, mode="and"
        )
        report = run_pipeline(cora_small, config, semantic_function=fn)
        assert report.gate == ("and", 2)

    def test_separate_training_dataset(self, cora_small):
        training = cora_small.sample(150, seed=1)
        report = run_pipeline(cora_small, CONFIG, training_dataset=training)
        assert report.metrics.pc > 0.3

    def test_salsh_improves_objective_over_lsh(self, cora_small, tbib):
        """The pipeline realises the paper's claim end to end."""
        fn = PatternSemanticFunction(tbib, cora_patterns())
        plain = run_pipeline(cora_small, CONFIG)
        semantic = run_pipeline(cora_small, CONFIG, semantic_function=fn)
        assert semantic.metrics.pq >= plain.metrics.pq - 0.02
