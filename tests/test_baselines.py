"""Tests for the twelve survey blocking techniques."""

import pytest

from repro.baselines import (
    AdaptiveSortedNeighbourhood,
    AllSubstringsBlocker,
    ArraySortedNeighbourhood,
    InvertedIndexSortedNeighbourhood,
    NearestNeighbourCanopy,
    QGramBlocker,
    RobustSuffixArrayBlocker,
    StandardBlocker,
    StringMapEmbedder,
    StringMapNNBlocker,
    StringMapThresholdBlocker,
    SuffixArrayBlocker,
    ThresholdCanopy,
)
from repro.errors import ConfigurationError
from repro.records import Dataset, Record

ATTRS = ("name",)


def make_dataset(names, entities=None):
    entities = entities or [None] * len(names)
    return Dataset(
        [
            Record(f"r{i}", {"name": name}, entity_id=entity)
            for i, (name, entity) in enumerate(zip(names, entities))
        ]
    )


@pytest.fixture()
def name_dataset():
    return make_dataset(
        ["anna smith", "anna smith", "anna smyth", "bob jones",
         "bob jones", "carol white", "dave black", "annasmith"],
        ["e1", "e1", "e1", "e2", "e2", "e3", "e4", "e1"],
    )


class TestStandardBlocker:
    def test_groups_identical_keys(self, name_dataset):
        result = StandardBlocker(ATTRS).block(name_dataset)
        assert ("r0", "r1") in result.distinct_pairs

    def test_typos_split_blocks(self, name_dataset):
        result = StandardBlocker(ATTRS).block(name_dataset)
        assert ("r0", "r2") not in result.distinct_pairs

    def test_key_normalisation(self):
        ds = make_dataset(["Anna-Smith", "anna smith"])
        result = StandardBlocker(ATTRS).block(ds)
        assert ("r0", "r1") in result.distinct_pairs

    def test_requires_attributes(self):
        with pytest.raises(ConfigurationError):
            StandardBlocker(())


class TestSortedNeighbourhood:
    def test_sora_window_blocks(self, name_dataset):
        result = ArraySortedNeighbourhood(ATTRS, window=3).block(name_dataset)
        assert all(len(b) == 3 for b in result.blocks)
        # Adjacent sorted keys are paired.
        assert ("r0", "r1") in result.distinct_pairs

    def test_sora_window_too_small(self):
        with pytest.raises(ConfigurationError):
            ArraySortedNeighbourhood(ATTRS, window=1)

    def test_sora_dataset_smaller_than_window(self):
        ds = make_dataset(["a", "b"])
        result = ArraySortedNeighbourhood(ATTRS, window=5).block(ds)
        assert result.blocks == (("r0", "r1"),)

    def test_sorii_windows_over_distinct_keys(self):
        # Five copies of one key should not crowd out the window.
        ds = make_dataset(["aa"] * 5 + ["ab", "ac"])
        result = InvertedIndexSortedNeighbourhood(ATTRS, window=2).block(ds)
        # 'ab' and 'ac' must co-occur in a window even with 'aa' frequent.
        assert ("r5", "r6") in result.distinct_pairs

    def test_sorii_larger_recall_than_tblo(self, name_dataset):
        tblo_pairs = StandardBlocker(ATTRS).block(name_dataset).distinct_pairs
        sorii_pairs = (
            InvertedIndexSortedNeighbourhood(ATTRS, window=3)
            .block(name_dataset)
            .distinct_pairs
        )
        assert tblo_pairs <= sorii_pairs


class TestAdaptiveSortedNeighbourhood:
    def test_similar_keys_in_one_segment(self, name_dataset):
        result = AdaptiveSortedNeighbourhood(
            ATTRS, similarity="jaro_winkler", threshold=0.9
        ).block(name_dataset)
        assert ("r0", "r2") in result.distinct_pairs  # smith ~ smyth

    def test_dissimilar_keys_split(self, name_dataset):
        result = AdaptiveSortedNeighbourhood(
            ATTRS, similarity="jaro_winkler", threshold=0.9
        ).block(name_dataset)
        assert ("r0", "r6") not in result.distinct_pairs  # anna vs dave

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            AdaptiveSortedNeighbourhood(ATTRS, threshold=0.0)

    def test_max_block_size_respected(self):
        ds = make_dataset([f"name{i:02d}" for i in range(50)])
        result = AdaptiveSortedNeighbourhood(
            ATTRS, similarity="bigram", threshold=0.1, max_block_size=10
        ).block(ds)
        assert result.max_block_size <= 10


class TestQGramBlocker:
    def test_recovers_typo_variants(self, name_dataset):
        # "smith" vs "smyth" alters two 2-grams of nine, so the shared
        # sub-list has 7 grams: a 0.7 threshold recovers it, 0.8 cannot.
        loose = QGramBlocker(ATTRS, q=2, threshold=0.7).block(name_dataset)
        strict = QGramBlocker(ATTRS, q=2, threshold=0.8).block(name_dataset)
        assert ("r0", "r2") in loose.distinct_pairs
        assert ("r0", "r2") not in strict.distinct_pairs

    def test_identical_keys_blocked(self, name_dataset):
        result = QGramBlocker(ATTRS, q=2, threshold=0.9).block(name_dataset)
        assert ("r0", "r1") in result.distinct_pairs

    def test_max_grams_caps_work(self):
        ds = make_dataset(["a very long name with many grams indeed", "short"])
        result = QGramBlocker(ATTRS, q=2, threshold=0.8, max_grams=8).block(ds)
        assert result is not None  # completes quickly

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            QGramBlocker(ATTRS, q=0)
        with pytest.raises(ConfigurationError):
            QGramBlocker(ATTRS, threshold=1.5)

    def test_sublist_lengths_respect_threshold(self):
        blocker = QGramBlocker(ATTRS, q=2, threshold=0.8)
        grams = tuple("abcdefghij")  # 10 grams -> min length 8
        sublists = blocker._sublists(grams)
        assert all(len(s) >= 8 for s in sublists)
        assert grams in sublists


class TestCanopies:
    def test_threshold_canopy_groups_similar(self, name_dataset):
        result = ThresholdCanopy(
            ATTRS, similarity="jaccard", loose=0.5, tight=0.9, q=2, seed=1
        ).block(name_dataset)
        assert ("r0", "r1") in result.distinct_pairs

    def test_threshold_canopy_invalid_thresholds(self):
        with pytest.raises(ConfigurationError):
            ThresholdCanopy(ATTRS, loose=0.9, tight=0.5)

    def test_every_record_leaves_pool(self, name_dataset):
        result = ThresholdCanopy(
            ATTRS, similarity="jaccard", loose=0.99, tight=0.99, q=2, seed=2
        ).block(name_dataset)
        # Termination even when canopies are singletons (blocks drop them).
        assert result.num_blocks >= 0

    def test_nn_canopy_sizes(self, name_dataset):
        result = NearestNeighbourCanopy(
            ATTRS, similarity="jaccard", n_canopy=3, n_remove=2, q=2, seed=3
        ).block(name_dataset)
        assert result.max_block_size <= 4  # seed + n_canopy

    def test_nn_invalid_counts(self):
        with pytest.raises(ConfigurationError):
            NearestNeighbourCanopy(ATTRS, n_canopy=2, n_remove=5)

    def test_unknown_similarity(self):
        with pytest.raises(ConfigurationError):
            ThresholdCanopy(ATTRS, similarity="cosmic")

    def test_canopy_deterministic(self, name_dataset):
        r1 = ThresholdCanopy(ATTRS, "jaccard", 0.4, 0.8, q=2, seed=5).block(name_dataset)
        r2 = ThresholdCanopy(ATTRS, "jaccard", 0.4, 0.8, q=2, seed=5).block(name_dataset)
        assert r1.distinct_pairs == r2.distinct_pairs


class TestStringMap:
    def test_embedder_identical_strings_same_point(self):
        import numpy as np

        embedder = StringMapEmbedder("edit", dim=4, seed=1)
        embedder.fit(["anna", "annA smith", "bob", "carol", "dave"])
        p1 = embedder.transform("anna")
        p2 = embedder.transform("anna")
        assert np.allclose(p1, p2)

    def test_embedder_similar_strings_close(self):
        import numpy as np

        strings = ["anna smith", "anna smyth", "completely different zz",
                   "bob jones", "carol white", "dave black"]
        embedder = StringMapEmbedder("edit", dim=6, seed=2).fit(strings)
        similar = np.linalg.norm(
            embedder.transform("anna smith") - embedder.transform("anna smyth")
        )
        dissimilar = np.linalg.norm(
            embedder.transform("anna smith")
            - embedder.transform("completely different zz")
        )
        assert similar < dissimilar

    def test_embedder_transform_before_fit(self):
        with pytest.raises(ConfigurationError):
            StringMapEmbedder("edit", dim=2).transform("x")

    def test_transform_many_before_fit(self):
        with pytest.raises(ConfigurationError):
            StringMapEmbedder("edit", dim=2).transform_many(["x"])

    @pytest.mark.parametrize("similarity", ("edit", "jaccard_q2"))
    def test_transform_many_identical_to_legacy(self, similarity):
        import numpy as np

        strings = ["anna smith", "anna smyth", "bob", "bob", "",
                   "carol white", "dave black", "zz 字 é"]
        embedder = StringMapEmbedder(similarity, dim=6, seed=3).fit(strings)
        batch = embedder.transform_many(strings)
        legacy = np.stack([embedder.transform(s) for s in strings])
        assert np.array_equal(batch, legacy)

    def test_transform_many_empty(self):
        embedder = StringMapEmbedder("edit", dim=5, seed=1).fit(["a", "b"])
        assert embedder.transform_many([]).shape == (0, 5)

    def test_stmt_blocks_similar_names(self, name_dataset):
        result = StringMapThresholdBlocker(
            ATTRS, similarity="edit", loose=0.6, tight=0.9, dim=4, grid=10, seed=4
        ).block(name_dataset)
        assert ("r0", "r1") in result.distinct_pairs

    def test_stmnn_respects_counts(self, name_dataset):
        result = StringMapNNBlocker(
            ATTRS, similarity="edit", n_canopy=2, n_remove=1, dim=4, grid=10, seed=5
        ).block(name_dataset)
        assert result.max_block_size <= 3

    def test_invalid_grid(self):
        with pytest.raises(ConfigurationError):
            StringMapThresholdBlocker(ATTRS, grid=0)


class TestSuffixArrays:
    def test_sua_shared_suffixes_block(self, name_dataset):
        result = SuffixArrayBlocker(ATTRS, min_length=5, max_block_size=10).block(
            name_dataset
        )
        # 'annasmith' and 'anna smith' share the suffix 'smith' etc.
        assert ("r0", "r7") in result.distinct_pairs

    def test_sua_max_block_size_drops_common_suffixes(self):
        ds = make_dataset([f"name {i}" for i in range(20)])
        result = SuffixArrayBlocker(ATTRS, min_length=3, max_block_size=5).block(ds)
        assert result.max_block_size <= 5

    def test_suas_substrings_superset_of_suffixes(self, name_dataset):
        sua = SuffixArrayBlocker(ATTRS, min_length=4, max_block_size=50).block(
            name_dataset
        )
        suas = AllSubstringsBlocker(ATTRS, min_length=4, max_block_size=50).block(
            name_dataset
        )
        assert sua.distinct_pairs <= suas.distinct_pairs

    def test_rsua_merges_similar_suffixes(self):
        # smith / smyth suffixes are adjacent alphabetically and similar.
        ds = make_dataset(["smith", "smyth"])
        plain = SuffixArrayBlocker(ATTRS, min_length=5, max_block_size=10).block(ds)
        robust = RobustSuffixArrayBlocker(
            ATTRS, similarity="jaro_winkler", threshold=0.7,
            min_length=5, max_block_size=10,
        ).block(ds)
        assert ("r0", "r1") not in plain.distinct_pairs
        assert ("r0", "r1") in robust.distinct_pairs

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            SuffixArrayBlocker(ATTRS, min_length=0)
        with pytest.raises(ConfigurationError):
            SuffixArrayBlocker(ATTRS, max_block_size=1)
        with pytest.raises(ConfigurationError):
            RobustSuffixArrayBlocker(ATTRS, threshold=0.0)
