"""Property-based tests for blockers and meta-blocking invariants.

Hypothesis generates random record corpora and random block collections;
the invariants below must hold regardless of content:

* every blocker emits structurally valid blocks over known ids;
* pruning never invents pairs, and CEP respects its global budget;
* WEP keeps at least the heaviest edge; node-centric pruning keeps at
  least one edge per connected node;
* evaluation measures stay in [0, 1] and FM is dominated by PC and PQ.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import BlockingResult
from repro.evaluation import evaluate_blocks
from repro.metablocking import (
    PRUNING_ALGORITHMS,
    WEIGHT_SCHEMES,
    build_blocking_graph,
    prune,
)
from repro.records import Dataset, Record

# -- strategies ---------------------------------------------------------------

_names = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=110), min_size=1, max_size=8
)


@st.composite
def small_corpus(draw) -> Dataset:
    """A corpus of 3-12 records over at most 4 entities."""
    size = draw(st.integers(min_value=3, max_value=12))
    records = []
    for index in range(size):
        entity = draw(st.integers(min_value=0, max_value=3))
        records.append(
            Record(
                f"r{index}",
                {"name": draw(_names)},
                entity_id=f"e{entity}",
            )
        )
    return Dataset(records)


@st.composite
def block_collection(draw):
    """Random overlapping blocks over a small id universe."""
    universe = [f"r{i}" for i in range(draw(st.integers(min_value=4, max_value=10)))]
    num_blocks = draw(st.integers(min_value=1, max_value=6))
    blocks = []
    for _ in range(num_blocks):
        members = draw(
            st.sets(st.sampled_from(universe), min_size=2, max_size=len(universe))
        )
        blocks.append(tuple(sorted(members)))
    return BlockingResult("random", tuple(blocks)), universe


# -- blocker structural invariants ----------------------------------------------


@settings(max_examples=40, deadline=None)
@given(small_corpus(), st.integers(min_value=0, max_value=50))
def test_lsh_blocker_structural_invariants(dataset, seed):
    from repro.core import LSHBlocker

    result = LSHBlocker(("name",), q=2, k=2, l=3, seed=seed).block(dataset)
    ids = set(dataset.record_ids)
    for block in result.blocks:
        assert len(block) >= 2
        assert set(block) <= ids
    metrics = evaluate_blocks(result, dataset)
    assert 0.0 <= metrics.pc <= 1.0
    assert 0.0 <= metrics.pq <= 1.0
    assert metrics.fm <= max(metrics.pc, metrics.pq) + 1e-12


@settings(max_examples=30, deadline=None)
@given(small_corpus())
def test_standard_blocker_partitions(dataset):
    """TBlo blocks are disjoint (a record has exactly one key)."""
    from repro.baselines import StandardBlocker

    result = StandardBlocker(("name",)).block(dataset)
    seen: set[str] = set()
    for block in result.blocks:
        assert not (set(block) & seen)
        seen |= set(block)


@settings(max_examples=30, deadline=None)
@given(small_corpus(), st.integers(min_value=2, max_value=5))
def test_sorted_neighbourhood_block_count(dataset, window):
    from repro.baselines import ArraySortedNeighbourhood

    result = ArraySortedNeighbourhood(("name",), window=window).block(dataset)
    if len(dataset) > window:
        assert result.num_blocks == len(dataset) - window + 1


# -- meta-blocking invariants -----------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(block_collection(), st.sampled_from(WEIGHT_SCHEMES))
def test_graph_edges_match_distinct_pairs(data, scheme):
    result, _ = data
    graph = build_blocking_graph(result, scheme)
    assert set(graph.edges) == set(result.distinct_pairs)
    assert all(weight >= 0.0 for weight in graph.edges.values())


@settings(max_examples=40, deadline=None)
@given(
    block_collection(),
    st.sampled_from(WEIGHT_SCHEMES),
    st.sampled_from(PRUNING_ALGORITHMS),
)
def test_pruning_subset_of_edges(data, scheme, algorithm):
    result, _ = data
    graph = build_blocking_graph(result, scheme)
    kept = prune(graph, algorithm)
    assert kept <= set(graph.edges)


@settings(max_examples=40, deadline=None)
@given(block_collection(), st.sampled_from(WEIGHT_SCHEMES))
def test_cep_respects_budget(data, scheme):
    result, _ = data
    graph = build_blocking_graph(result, scheme)
    kept = prune(graph, "CEP")
    budget = max(1, sum(graph.block_sizes) // 2)
    assert len(kept) <= budget


@settings(max_examples=40, deadline=None)
@given(block_collection(), st.sampled_from(WEIGHT_SCHEMES))
def test_wep_keeps_heaviest_edge(data, scheme):
    result, _ = data
    graph = build_blocking_graph(result, scheme)
    if not graph.edges:
        return
    kept = prune(graph, "WEP")
    heaviest = max(graph.edges, key=lambda p: graph.edges[p])
    assert heaviest in kept


@settings(max_examples=40, deadline=None)
@given(block_collection(), st.sampled_from(WEIGHT_SCHEMES))
def test_node_pruning_covers_every_connected_node(data, scheme):
    """WNP/CNP keep at least one incident edge per node with edges."""
    result, _ = data
    graph = build_blocking_graph(result, scheme)
    connected = {a for a, _ in graph.edges} | {b for _, b in graph.edges}
    for algorithm in ("WNP", "CNP"):
        kept = prune(graph, algorithm)
        covered = {a for a, _ in kept} | {b for _, b in kept}
        assert connected == covered, algorithm
