"""Tests for normalisation, q-grams and set similarities."""

import pytest

from repro.text import (
    dice_similarity,
    jaccard_similarity,
    normalize,
    qgram_jaccard,
    qgram_multiset,
    qgram_set,
    qgrams,
)


class TestNormalize:
    def test_lowercases_and_strips_punctuation(self):
        assert normalize("The Cascade-Correlation!") == "the cascade correlation"

    def test_collapses_whitespace(self):
        assert normalize("  a   b  ") == "a b"

    def test_options_can_be_disabled(self):
        assert normalize("A-B", lowercase=False, strip_punctuation=False) == "A-B"

    def test_empty_string(self):
        assert normalize("") == ""

    def test_only_punctuation_becomes_empty(self):
        assert normalize("!!! ???") == ""


class TestQgrams:
    def test_basic_bigrams(self):
        assert qgrams("wang", 2) == ["wa", "an", "ng"]

    def test_q_larger_than_string_yields_whole(self):
        assert qgrams("ab", 5) == ["ab"]

    def test_empty_string_yields_nothing(self):
        assert qgrams("", 3) == []

    def test_invalid_q_raises(self):
        with pytest.raises(ValueError):
            qgrams("abc", 0)

    def test_padded_includes_boundary_grams(self):
        grams = qgrams("ab", 2, padded=True)
        assert "#a" in grams and "b#" in grams

    def test_qgram_set_deduplicates(self):
        assert qgram_set("aaa", 2) == frozenset({"aa"})

    def test_qgram_multiset_counts(self):
        counts = qgram_multiset("aaa", 2)
        assert counts["aa"] == 2

    def test_number_of_grams(self):
        assert len(qgrams("abcdef", 3)) == 4


class TestSetSimilarities:
    def test_jaccard_identical(self):
        assert jaccard_similarity({"a", "b"}, {"a", "b"}) == 1.0

    def test_jaccard_disjoint(self):
        assert jaccard_similarity({"a"}, {"b"}) == 0.0

    def test_jaccard_partial(self):
        assert jaccard_similarity({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_jaccard_both_empty(self):
        assert jaccard_similarity(set(), set()) == 1.0

    def test_dice_partial(self):
        assert dice_similarity({"a", "b"}, {"b", "c"}) == pytest.approx(0.5)

    def test_dice_both_empty(self):
        assert dice_similarity(set(), set()) == 1.0

    def test_qgram_jaccard_strings(self):
        assert qgram_jaccard("wang", "wang", 2) == 1.0
        assert 0.0 < qgram_jaccard("wang", "wong", 2) < 1.0

    def test_jaccard_symmetry(self):
        s1, s2 = {"a", "b", "c"}, {"b", "d"}
        assert jaccard_similarity(s1, s2) == jaccard_similarity(s2, s1)
