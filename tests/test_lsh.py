"""Tests for the LSH substrate: sensitivity, bands, index, collision math."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.lsh import (
    BandedLSHIndex,
    SensitivityParams,
    amplify_sensitivity,
    band_keys,
    banded_collision_probability,
    salsh_collision_probability,
    split_bands,
    wway_collision_probability,
)


class TestSensitivity:
    def test_valid_params(self):
        params = SensitivityParams(0.1, 0.5, 0.9, 0.2)
        assert params.gap == pytest.approx(0.7)

    def test_invalid_distance_order(self):
        with pytest.raises(ConfigurationError):
            SensitivityParams(0.6, 0.5, 0.9, 0.2)

    def test_invalid_probability_order(self):
        with pytest.raises(ConfigurationError):
            SensitivityParams(0.1, 0.5, 0.2, 0.9)

    def test_amplification_widens_gap(self):
        base = SensitivityParams(0.2, 0.6, 0.8, 0.4)
        amplified = amplify_sensitivity(base, k=4, l=8)
        assert amplified.gap > base.gap

    def test_amplification_formula(self):
        base = SensitivityParams(0.2, 0.6, 0.8, 0.4)
        amplified = amplify_sensitivity(base, k=2, l=3)
        assert amplified.p1 == pytest.approx(1 - (1 - 0.8**2) ** 3)
        assert amplified.p2 == pytest.approx(1 - (1 - 0.4**2) ** 3)

    def test_amplify_invalid_kl(self):
        with pytest.raises(ConfigurationError):
            amplify_sensitivity(SensitivityParams(0.1, 0.5, 0.9, 0.2), 0, 5)


class TestBands:
    def test_split_bands_shapes(self):
        signature = np.arange(12, dtype=np.uint64)
        bands = split_bands(signature, k=3, l=4)
        assert len(bands) == 4
        assert bands[0] == (0, 1, 2)
        assert bands[3] == (9, 10, 11)

    def test_split_bands_wrong_length(self):
        with pytest.raises(ConfigurationError):
            split_bands(np.arange(10, dtype=np.uint64), k=3, l=4)

    def test_band_keys_equal_for_equal_bands(self):
        signature = np.arange(6, dtype=np.uint64)
        assert band_keys(signature, 2, 3) == band_keys(signature.copy(), 2, 3)


class TestBandedLSHIndex:
    def test_records_with_same_keys_share_block(self):
        index = BandedLSHIndex(2)
        index.add("a", ["k1", "k2"])
        index.add("b", ["k1", "x"])
        blocks = index.blocks()
        assert ("a", "b") in blocks

    def test_min_size_filters_singletons(self):
        index = BandedLSHIndex(1)
        index.add("a", ["k1"])
        index.add("b", ["k2"])
        assert index.blocks() == []

    def test_gate_excludes_records(self):
        index = BandedLSHIndex(1)
        index.add("a", ["k"], gate=lambda t, r: ("s",))
        index.add("b", ["k"], gate=lambda t, r: ())  # excluded
        index.add("c", ["k"], gate=lambda t, r: ("s",))
        assert index.blocks() == [("a", "c")]

    def test_gate_multiple_suffixes_or_semantics(self):
        index = BandedLSHIndex(1)
        index.add("a", ["k"], gate=lambda t, r: (0, 1))
        index.add("b", ["k"], gate=lambda t, r: (1, 2))
        blocks = index.blocks()
        assert ("a", "b") in blocks  # met in suffix 1

    def test_wrong_number_of_keys(self):
        index = BandedLSHIndex(2)
        with pytest.raises(ValueError):
            index.add("a", ["only-one"])

    def test_invalid_table_count(self):
        with pytest.raises(ValueError):
            BandedLSHIndex(0)

    def test_bucket_sizes(self):
        index = BandedLSHIndex(1)
        index.add("a", ["k"])
        index.add("b", ["k"])
        index.add("c", ["other"])
        assert sorted(index.bucket_sizes()) == [1, 2]


class TestCollisionMath:
    def test_banded_probability_endpoints(self):
        assert banded_collision_probability(0.0, 3, 5) == 0.0
        assert banded_collision_probability(1.0, 3, 5) == 1.0

    def test_banded_probability_monotone_in_s(self):
        values = [banded_collision_probability(s / 10, 4, 63) for s in range(11)]
        assert values == sorted(values)

    def test_paper_ncvoter_point(self):
        """k=9, l=15 places 0.8-similar pairs with ~90% probability (§6.1)."""
        assert banded_collision_probability(0.8, 9, 15) == pytest.approx(
            0.885, abs=1e-3
        )

    def test_wway_and_or_formulas(self):
        assert wway_collision_probability(0.5, 2, "and") == 0.25
        assert wway_collision_probability(0.5, 2, "or") == 0.75

    def test_wway_w1_and_equals_or(self):
        """Fig. 5/7/8: a 1-way function is the same under both µ."""
        for s in (0.0, 0.3, 0.8, 1.0):
            assert wway_collision_probability(s, 1, "and") == pytest.approx(
                wway_collision_probability(s, 1, "or")
            )

    def test_wway_and_decreases_or_increases_with_w(self):
        s = 0.6
        and_values = [wway_collision_probability(s, w, "and") for w in range(1, 10)]
        or_values = [wway_collision_probability(s, w, "or") for w in range(1, 10)]
        assert and_values == sorted(and_values, reverse=True)
        assert or_values == sorted(or_values)

    def test_wway_invalid_mode(self):
        with pytest.raises(ConfigurationError):
            wway_collision_probability(0.5, 2, "xor")

    def test_salsh_zero_semantic_blocks_nothing(self):
        """Prop 5.3(1): semantic similarity 0 -> collision probability 0."""
        assert salsh_collision_probability(1.0, 0.0, 4, 63, 3, "or") == 0.0
        assert salsh_collision_probability(1.0, 0.0, 4, 63, 3, "and") == 0.0

    def test_salsh_reduces_to_banded_when_semantics_certain(self):
        assert salsh_collision_probability(0.7, 1.0, 4, 63, 2, "or") == pytest.approx(
            banded_collision_probability(0.7, 4, 63)
        )

    def test_salsh_never_exceeds_banded(self):
        """Prop 5.3(2): the semantic gate can only reduce collisions."""
        for s in (0.2, 0.5, 0.9):
            for sp in (0.1, 0.5, 0.9):
                combined = salsh_collision_probability(s, sp, 3, 10, 2, "and")
                assert combined <= banded_collision_probability(s, 3, 10) + 1e-12

    def test_probability_out_of_range_raises(self):
        with pytest.raises(ConfigurationError):
            banded_collision_probability(1.5, 2, 2)
