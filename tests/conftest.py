"""Shared fixtures: taxonomies, handcrafted records, generated corpora."""

from __future__ import annotations

import pytest

from repro.datasets import (
    CoraLikeGenerator,
    NCVoterLikeGenerator,
    fig1_dataset,
    fig1_semantic_function,
)
from repro.records import Dataset, Record
from repro.taxonomy.builders import bibliographic_tree, voter_tree


@pytest.fixture(scope="session")
def tbib():
    return bibliographic_tree()


@pytest.fixture(scope="session")
def tvoter():
    return voter_tree()


@pytest.fixture(scope="session")
def fig1():
    return fig1_dataset()


@pytest.fixture(scope="session")
def fig1_sf():
    return fig1_semantic_function()


@pytest.fixture()
def tiny_dataset() -> Dataset:
    """Eight handcrafted records over three entities + two singletons."""
    rows = [
        ("t1", "alpha beta gamma", "e1"),
        ("t2", "alpha beta gamma", "e1"),
        ("t3", "alpha beta gamna", "e1"),
        ("t4", "delta epsilon zeta", "e2"),
        ("t5", "delta epsilon zetta", "e2"),
        ("t6", "eta theta iota", "e3"),
        ("t7", "kappa lambda mu", "e4"),
        ("t8", "completely different text", "e5"),
    ]
    return Dataset(
        [
            Record(rid, {"title": title}, entity_id=entity)
            for rid, title, entity in rows
        ],
        name="tiny",
    )


@pytest.fixture(scope="session")
def cora_small() -> Dataset:
    """A small Cora-like corpus for integration-style tests."""
    return CoraLikeGenerator(num_records=300, num_entities=40, seed=7).generate()


@pytest.fixture(scope="session")
def voter_small() -> Dataset:
    """A small NC-Voter-like corpus for integration-style tests."""
    return NCVoterLikeGenerator(num_records=800, seed=7).generate()
