"""Tests for Table 1 patterns remapped onto Fig. 10 taxonomy variants."""

import pytest

from repro.semantic import (
    PatternSemanticFunction,
    cora_patterns,
    cora_patterns_for,
)
from repro.records import Record
from repro.taxonomy.builders import (
    bibliographic_tree,
    bibliographic_tree_variant,
)


def pub(journal="", booktitle="", institution=""):
    return Record(
        "p",
        {"journal": journal, "booktitle": booktitle, "institution": institution},
    )


def test_reference_tree_patterns_unchanged(tbib):
    original = cora_patterns()
    remapped = cora_patterns_for(bibliographic_tree())
    assert [p.concepts for p in remapped] == [p.concepts for p in original]


def test_variant1_remaps_removed_levels():
    tree = bibliographic_tree_variant(1)  # no c2 / c6
    remapped = cora_patterns_for(tree)
    for pattern in remapped:
        for concept in pattern.concepts:
            assert tree.has_concept(concept)
    # c6 (non-peer-reviewed) remaps to its parent c1.
    assert remapped[0].concepts == ("c3", "c4", "c1")


def test_variant3_journal_becomes_peer_reviewed():
    tree = bibliographic_tree_variant(3)  # no c3 (Journal)
    remapped = cora_patterns_for(tree)
    # Pattern 4 (journal only) now maps to Peer Reviewed.
    assert remapped[3].concepts == ("c2",)


@pytest.mark.parametrize("variant", [1, 2, 3])
def test_variant_functions_interpret_all_pattern_rows(variant):
    tree = bibliographic_tree_variant(variant)
    fn = PatternSemanticFunction(tree, cora_patterns_for(tree))
    combos = [
        pub("j", "b", "i"), pub("j", "b"), pub("j", "", "i"), pub("j"),
        pub("", "b", "i"), pub("", "b"), pub("", "", "i"), pub(),
    ]
    for record in combos:
        zeta = fn.interpret(record)
        assert zeta, record.fields
        for concept in zeta:
            assert tree.has_concept(concept)


def test_variant_interpretations_increase_relatedness():
    """§6.3.3: removing Journal relates journal and proceedings records
    through the surviving parent concept."""
    from repro.semantic import record_semantic_similarity

    full = bibliographic_tree()
    fn_full = PatternSemanticFunction(full, cora_patterns_for(full))
    variant = bibliographic_tree_variant(3)
    fn_variant = PatternSemanticFunction(variant, cora_patterns_for(variant))

    journal_record, proceedings_record = pub("j"), pub("", "b")
    before = record_semantic_similarity(
        full,
        fn_full.interpret(journal_record),
        fn_full.interpret(proceedings_record),
    )
    after = record_semantic_similarity(
        variant,
        fn_variant.interpret(journal_record),
        fn_variant.interpret(proceedings_record),
    )
    assert before == 0.0
    assert after > 0.0
