"""Tests for seed sweeps and bootstrap confidence intervals."""

import pytest

from repro.core import LSHBlocker
from repro.errors import EvaluationError
from repro.evaluation.statistics import (
    bootstrap_difference,
    seed_sweep,
    summarise,
)


class TestSeedSweep:
    def test_sweep_runs_every_seed(self, tiny_dataset):
        metrics = seed_sweep(
            lambda seed: LSHBlocker(("title",), q=2, k=2, l=4, seed=seed),
            tiny_dataset,
            seeds=range(3),
        )
        assert len(metrics) == 3

    def test_summarise_mean_std(self, tiny_dataset):
        metrics = seed_sweep(
            lambda seed: LSHBlocker(("title",), q=2, k=2, l=4, seed=seed),
            tiny_dataset,
            seeds=range(4),
        )
        summary = summarise(metrics, "pc")
        assert 0.0 <= summary.mean <= 1.0
        assert summary.n == 4
        assert summary.minimum <= summary.mean <= summary.maximum

    def test_summarise_unknown_metric(self, tiny_dataset):
        metrics = seed_sweep(
            lambda seed: LSHBlocker(("title",), q=2, k=2, l=2, seed=seed),
            tiny_dataset,
            seeds=[0],
        )
        with pytest.raises(EvaluationError):
            summarise(metrics, "nope")

    def test_summarise_empty(self):
        with pytest.raises(EvaluationError):
            summarise([], "pc")


class TestBootstrap:
    def test_clear_separation_excludes_zero(self):
        a = [0.9, 0.92, 0.88, 0.91, 0.9]
        b = [0.5, 0.52, 0.48, 0.51, 0.5]
        point, lower, upper = bootstrap_difference(a, b, seed=1)
        assert point == pytest.approx(0.4, abs=1e-9)
        assert lower > 0.0

    def test_identical_samples_straddle_zero(self):
        a = [0.5, 0.6, 0.55, 0.45, 0.5, 0.58]
        point, lower, upper = bootstrap_difference(a, list(a), seed=2)
        assert lower <= 0.0 <= upper

    def test_deterministic_given_seed(self):
        a, b = [0.2, 0.3, 0.25], [0.1, 0.15, 0.12]
        assert bootstrap_difference(a, b, seed=3) == bootstrap_difference(
            a, b, seed=3
        )

    def test_interval_ordering(self):
        a, b = [0.4, 0.6, 0.5], [0.3, 0.5, 0.4]
        _, lower, upper = bootstrap_difference(a, b, seed=4)
        assert lower <= upper

    def test_invalid_inputs(self):
        with pytest.raises(EvaluationError):
            bootstrap_difference([], [0.1])
        with pytest.raises(EvaluationError):
            bootstrap_difference([0.1], [0.2], confidence=1.5)
