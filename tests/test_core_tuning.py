"""Tests for §5.3 parameter tuning — including the paper's exact ladder."""

import math

import pytest

from repro.core.tuning import (
    allowed_tables,
    determine_kl,
    determine_sh,
    kl_ladder,
    required_tables,
)
from repro.errors import ConfigurationError
from repro.lsh.collision import banded_collision_probability


class TestDetermineSh:
    def test_quantile_semantics(self):
        sims = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
        # 5% of 10 samples -> index 0: sh is the smallest similarity.
        assert determine_sh(sims, 0.05) == 0.1
        # 30% -> index 3.
        assert determine_sh(sims, 0.30) == 0.4

    def test_zero_epsilon_gives_minimum(self):
        assert determine_sh([0.5, 0.2, 0.9], 0.0) == 0.2

    def test_empty_input_raises(self):
        with pytest.raises(ConfigurationError):
            determine_sh([], 0.05)

    def test_invalid_epsilon(self):
        with pytest.raises(ConfigurationError):
            determine_sh([0.5], 1.0)


class TestRequiredTables:
    def test_paper_cora_value(self):
        assert required_tables(0.3, 4, 0.4) == 63

    def test_result_actually_reaches_target(self):
        for k in range(1, 8):
            l = required_tables(0.3, k, 0.4)
            assert banded_collision_probability(0.3, k, l) >= 0.4
            if l > 1:
                assert banded_collision_probability(0.3, k, l - 1) < 0.4

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            required_tables(0.0, 2, 0.4)
        with pytest.raises(ConfigurationError):
            required_tables(0.3, 0, 0.4)
        with pytest.raises(ConfigurationError):
            required_tables(0.3, 2, 1.0)


class TestAllowedTables:
    def test_upper_bound_respects_limit(self):
        upper = allowed_tables(0.2, 4, 0.1)
        assert banded_collision_probability(0.2, 4, int(upper)) <= 0.1

    def test_zero_similarity_unbounded(self):
        assert allowed_tables(0.0, 3, 0.1) == math.inf


class TestDetermineKl:
    def test_paper_cora_selection(self):
        """sh=0.3, sl=0.2, ph=0.4, pl=0.1 -> (k=4, l=63) as in §6.1."""
        params = determine_kl(0.3, 0.2, 0.4, 0.1)
        assert (params.k, params.l) == (4, 63)

    def test_k3_is_infeasible_for_cora_inputs(self):
        assert required_tables(0.3, 3, 0.4) > allowed_tables(0.2, 3, 0.1)

    def test_selection_satisfies_both_constraints(self):
        params = determine_kl(0.35, 0.15, 0.5, 0.05)
        assert banded_collision_probability(0.35, params.k, params.l) >= 0.5
        assert banded_collision_probability(0.15, params.k, params.l) <= 0.05

    def test_invalid_threshold_order(self):
        with pytest.raises(ConfigurationError):
            determine_kl(0.2, 0.3, 0.4, 0.1)

    def test_infeasible_raises(self):
        # sl almost equal to sh with tight probabilities cannot separate.
        with pytest.raises(ConfigurationError):
            determine_kl(0.300001, 0.3, 0.99, 0.01, max_k=4)


class TestKlLadder:
    def test_paper_fig6_ladder(self):
        """The exact (k, l) pairs of Fig. 6 / Fig. 9 (a)-(c)."""
        assert kl_ladder(0.3, 0.4, range(1, 7)) == [
            (1, 2), (2, 6), (3, 19), (4, 63), (5, 210), (6, 701),
        ]

    def test_ladder_monotone_in_k(self):
        ladder = kl_ladder(0.25, 0.5, range(1, 10))
        ls = [l for _, l in ladder]
        assert ls == sorted(ls)
