"""Growable signature spill: append-to-file ``.npy`` for unknown-length
streams (DESIGN.md, "Process-sharded streaming runtime")."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LSHBlocker
from repro.errors import ConfigurationError
from repro.minhash import (
    GrowableSignatureSpill,
    MinHasher,
    Shingler,
    open_signature_memmap,
)

VOTER_ATTRS = ("first_name", "last_name")


class TestGrowableSpill:
    def test_append_finalize_round_trip(self, tmp_path, voter_small):
        shingler = Shingler(VOTER_ATTRS, q=2)
        hasher = MinHasher(12, seed=4)
        corpus = shingler.shingle_corpus(voter_small)
        expected = hasher.signature_matrix(corpus)

        spill = GrowableSignatureSpill(tmp_path / "grow.npy", 12)
        cursor = 0
        for size in (100, 1, 0, 250, 10_000):
            slab = expected[cursor : cursor + size]
            view = spill.append(slab)
            # Each append returns the file-backed bytes just written.
            assert np.array_equal(np.asarray(view), slab)
            cursor += slab.shape[0]
            if cursor >= expected.shape[0]:
                break
        assert spill.num_records == expected.shape[0]
        matrix = spill.finalize()
        assert spill.finalized
        assert np.array_equal(np.asarray(matrix), expected)
        # The finalized file is a plain .npy readable by a later process.
        assert np.array_equal(np.load(tmp_path / "grow.npy"), expected)

    def test_empty_stream_finalizes_to_zero_rows(self, tmp_path):
        spill = GrowableSignatureSpill(tmp_path / "empty.npy", 8)
        matrix = spill.finalize()
        assert matrix.shape == (0, 8)
        assert matrix.dtype == np.uint64
        assert np.load(tmp_path / "empty.npy").shape == (0, 8)

    def test_finalize_is_idempotent(self, tmp_path):
        spill = GrowableSignatureSpill(tmp_path / "twice.npy", 4)
        spill.append(np.arange(8, dtype=np.uint64).reshape(2, 4))
        first = spill.finalize()
        second = spill.finalize()
        assert np.array_equal(np.asarray(first), np.asarray(second))

    def test_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            GrowableSignatureSpill(tmp_path / "bad.npy", 0)
        spill = GrowableSignatureSpill(tmp_path / "v.npy", 4)
        with pytest.raises(ConfigurationError):
            spill.append(np.zeros((2, 5), dtype=np.uint64))
        with pytest.raises(ConfigurationError):
            spill.append(np.zeros((2, 4), dtype=np.int64))
        spill.finalize()
        with pytest.raises(ConfigurationError):
            spill.append(np.zeros((1, 4), dtype=np.uint64))

    def test_matches_fixed_memmap_bytes(self, tmp_path, voter_small):
        # The growable file, once finalized, is byte-for-byte loadable
        # like the fixed open_signature_memmap spill.
        shingler = Shingler(VOTER_ATTRS, q=2)
        hasher = MinHasher(6, seed=1)
        corpus = shingler.shingle_corpus(voter_small)
        expected = hasher.signature_matrix(corpus)

        fixed = open_signature_memmap(
            tmp_path / "fixed.npy", corpus.num_records, 6
        )
        fixed[:] = expected
        fixed.flush()
        grow = GrowableSignatureSpill(tmp_path / "grown.npy", 6)
        grow.append(expected[:300])
        grow.append(expected[300:])
        grow.finalize()
        assert np.array_equal(
            np.load(tmp_path / "fixed.npy"), np.load(tmp_path / "grown.npy")
        )


class TestSpillLifecycle:
    def test_close_releases_handle_and_salvages_rows(self, tmp_path):
        spill = GrowableSignatureSpill(tmp_path / "closed.npy", 4)
        spill.append(np.arange(12, dtype=np.uint64).reshape(3, 4))
        spill.close()
        assert spill.finalized
        # The closed file is a valid .npy holding the appended rows.
        assert np.load(tmp_path / "closed.npy").shape == (3, 4)
        spill.close()  # idempotent
        assert spill.finalize().shape == (3, 4)

    def test_context_manager_closes(self, tmp_path):
        with GrowableSignatureSpill(tmp_path / "ctx.npy", 4) as spill:
            spill.append(np.zeros((2, 4), dtype=np.uint64))
        assert spill.finalized
        assert np.load(tmp_path / "ctx.npy").shape == (2, 4)

    def test_context_manager_closes_on_error(self, tmp_path):
        with pytest.raises(RuntimeError):
            with GrowableSignatureSpill(tmp_path / "err.npy", 4) as spill:
                spill.append(np.ones((1, 4), dtype=np.uint64))
                raise RuntimeError("stream died")
        assert spill.finalized
        assert np.load(tmp_path / "err.npy").shape == (1, 4)

    def test_aborted_block_stream_releases_spill(self, tmp_path, voter_small):
        # Regression: a stream aborting before finalize used to leak
        # the spill's open handle and leave a zero-row header.
        records = list(voter_small)
        blocker = LSHBlocker(VOTER_ATTRS, q=2, k=4, l=6, seed=11)
        spill = GrowableSignatureSpill(tmp_path / "abort.npy", 4 * 6)

        def aborting_stream():
            yield records[:100]
            raise RuntimeError("upstream died")

        with pytest.raises(RuntimeError):
            blocker.block_stream(aborting_stream(), signatures_out=spill)
        assert spill.finalized
        salvaged = np.load(tmp_path / "abort.npy", mmap_mode="r")
        assert salvaged.shape == (100, 4 * 6)

    def test_aborted_salsh_stream_releases_spill(self, tmp_path, voter_small):
        from repro.core import SALSHBlocker
        from repro.semantic import SemhashEncoder, VoterSemanticFunction

        records = list(voter_small)
        sf = VoterSemanticFunction()
        blocker = SALSHBlocker(
            VOTER_ATTRS, q=2, k=4, l=6, seed=11, semantic_function=sf
        )
        encoder = SemhashEncoder(sf, records[:100])
        spill = GrowableSignatureSpill(tmp_path / "abort-salsh.npy", 4 * 6)

        def aborting_stream():
            yield records[:50]
            raise RuntimeError("upstream died")

        with pytest.raises(RuntimeError):
            blocker.block_stream(
                aborting_stream(), encoder=encoder, signatures_out=spill
            )
        assert spill.finalized
        assert np.load(tmp_path / "abort-salsh.npy").shape == (50, 4 * 6)


class TestUnknownLengthStreams:
    def test_block_stream_plain_generator(self, tmp_path, voter_small):
        # End-to-end acceptance: a generator with no len(), spilled
        # through the growable file, blocks identical to block().
        blocker = LSHBlocker(VOTER_ATTRS, q=2, k=4, l=6, seed=11)
        reference = blocker.block(voter_small)
        records = list(voter_small)
        spill = GrowableSignatureSpill(tmp_path / "stream.npy", 4 * 6)

        def slab_generator():
            for lo in range(0, len(records), 103):
                yield iter(records[lo : lo + 103])

        streamed = blocker.block_stream(
            slab_generator(), signatures_out=spill
        )
        assert streamed.blocks == reference.blocks
        assert streamed.metadata["spilled"] is True
        assert spill.num_records == len(records)
        matrix = spill.finalize()
        corpus = blocker.shingler.shingle_corpus(voter_small)
        assert np.array_equal(
            np.asarray(matrix), blocker.hasher.signature_matrix(corpus)
        )

    def test_empty_generator_stream(self, tmp_path):
        blocker = LSHBlocker(VOTER_ATTRS, q=2, k=2, l=2, seed=0)
        spill = GrowableSignatureSpill(tmp_path / "none.npy", 4)
        result = blocker.block_stream(iter(()), signatures_out=spill)
        assert result.blocks == ()
        assert result.metadata["num_records"] == 0
        assert spill.finalize().shape == (0, 4)
