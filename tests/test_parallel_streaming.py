"""Parallel & streaming runtime equivalence (see DESIGN.md, "Parallel &
streaming runtime").

The contract mirrors PR 1's batch-engine guarantee: neither the worker
count, nor slab boundaries, nor a memory-mapped signature backing file
may change a single byte of the output. Covers multi-threaded signature
matrices (plain and runner-up), preallocated / memory-mapped ``out=``
buffers, incremental ``shingle_corpus`` appends over a shared
:class:`ShingleVocabulary`, cross-slab bucket merging in
``BandedLSHIndex.add_many`` (with and without semantic gates),
``LSHBlocker.block_stream``, and the bounded :class:`LRUCache`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LSHBlocker, SALSHBlocker
from repro.core.lsh_variants import _MinHasherWithRunnerUp
from repro.errors import ConfigurationError
from repro.lsh.bands import split_bands_matrix
from repro.lsh.index import BandedLSHIndex
from repro.minhash import (
    MinHasher,
    Shingler,
    ShingleVocabulary,
    open_signature_memmap,
)
from repro.records import Dataset, Record
from repro.semantic import SemhashEncoder, VoterSemanticFunction
from repro.semantic.hashing import WWaySemanticHashFamily
from repro.utils.cache import LRUCache
from repro.utils.parallel import chunk_spans, resolve_workers, run_chunked

VOTER_ATTRS = ("first_name", "last_name")


def title_dataset(titles: list[str]) -> Dataset:
    return Dataset([Record(f"r{i}", {"title": t}) for i, t in enumerate(titles)])


#: Same awkward layouts as test_batch_equivalence: duplicates, empty
#: records mid-stream and trailing, a single-shingle record.
EDGE_TITLES = [
    "alpha beta gamma",
    "alpha beta gamma",
    "",
    "x",
    "delta epsilon",
    "alpha bexa gamna",
    "",
]


class TestParallelSignatureMatrix:
    def test_workers_byte_identical(self, voter_small):
        shingler = Shingler(VOTER_ATTRS, q=2)
        hasher = MinHasher(48, seed=3)
        corpus = shingler.shingle_corpus(voter_small)
        serial = hasher.signature_matrix(corpus)
        for workers in (2, 4, None):
            parallel = hasher.signature_matrix(corpus, workers=workers)
            assert np.array_equal(serial, parallel)

    def test_workers_with_tiny_chunks(self):
        # chunk_elements=1 forces one chunk per hash function, so every
        # chunk really runs as its own unit of work.
        corpus = Shingler(("title",), q=2).shingle_corpus(
            title_dataset(EDGE_TITLES)
        )
        hasher = MinHasher(24, seed=5)
        serial = hasher.signature_matrix(corpus)
        threaded = hasher.signature_matrix(corpus, chunk_elements=1, workers=4)
        assert np.array_equal(serial, threaded)

    def test_runner_up_workers_byte_identical(self, cora_small):
        shingler = Shingler(("authors", "title"), q=3)
        hasher = _MinHasherWithRunnerUp(num_hashes=20, seed=2)
        corpus = shingler.shingle_corpus(cora_small)
        min_serial, run_serial = hasher.signature_matrix_with_runner_up(corpus)
        min_par, run_par = hasher.signature_matrix_with_runner_up(
            corpus, chunk_elements=1, workers=3
        )
        assert np.array_equal(min_serial, min_par)
        assert np.array_equal(run_serial, run_par)

    def test_out_buffer_and_memmap(self, tmp_path, voter_small):
        shingler = Shingler(VOTER_ATTRS, q=2)
        hasher = MinHasher(16, seed=1)
        corpus = shingler.shingle_corpus(voter_small)
        expected = hasher.signature_matrix(corpus)

        preallocated = np.empty_like(expected)
        returned = hasher.signature_matrix(corpus, out=preallocated)
        assert returned is preallocated
        assert np.array_equal(preallocated, expected)

        mm = open_signature_memmap(
            tmp_path / "sig.npy", corpus.num_records, 16
        )
        hasher.signature_matrix(corpus, workers=2, out=mm)
        mm.flush()
        # The spilled file is a plain .npy readable by a later process.
        reread = np.load(tmp_path / "sig.npy", mmap_mode="r")
        assert np.array_equal(np.asarray(reread), expected)

    def test_out_shape_and_dtype_validated(self):
        corpus = Shingler(("title",), q=2).shingle_corpus(
            title_dataset(["ab", "cd"])
        )
        hasher = MinHasher(4, seed=0)
        with pytest.raises(ConfigurationError):
            hasher.signature_matrix(corpus, out=np.empty((2, 5), dtype=np.uint64))
        with pytest.raises(ConfigurationError):
            hasher.signature_matrix(corpus, out=np.empty((2, 4), dtype=np.int64))

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_workers(0)


class TestRunChunked:
    def test_covers_all_spans_any_worker_count(self):
        spans = chunk_spans(17, 3)
        assert spans[0] == (0, 3) and spans[-1] == (15, 17)
        for workers in (1, 2, 8):
            seen = np.zeros(17, dtype=np.int64)

            def mark(lo, hi):
                seen[lo:hi] += 1

            run_chunked(mark, spans, workers)
            assert (seen == 1).all()

    def test_exceptions_propagate(self):
        def boom(lo, hi):
            raise RuntimeError("chunk failed")

        with pytest.raises(RuntimeError):
            run_chunked(boom, chunk_spans(4, 1), workers=2)


class TestIncrementalShingling:
    def test_append_matches_one_shot(self, voter_small):
        shingler = Shingler(VOTER_ATTRS, q=2)
        records = list(voter_small)
        one_shot = shingler.shingle_corpus(records)

        vocab = ShingleVocabulary()
        slabs = [records[:100], records[100:101], [], records[101:]]
        corpora = [
            shingler.shingle_corpus(slab, vocabulary=vocab) for slab in slabs
        ]

        # Slab CSR layouts concatenate to the one-shot layout: the
        # shared vocabulary interns grams in the same first-seen order.
        tokens = np.concatenate([c.token_vocab for c in corpora])
        counts = np.concatenate([c.counts for c in corpora])
        assert np.array_equal(tokens, one_shot.token_vocab)
        assert np.array_equal(
            np.cumsum(np.concatenate([[0], counts])), one_shot.indptr
        )
        assert sum(c.num_records for c in corpora) == one_shot.num_records
        assert np.array_equal(corpora[-1].vocab_hashes, one_shot.vocab_hashes)
        # Earlier slabs see a prefix of the final vocabulary.
        v0 = corpora[0].vocab_size
        assert np.array_equal(
            corpora[0].vocab_hashes, one_shot.vocab_hashes[:v0]
        )

    def test_signatures_invariant_under_slab_boundaries(self, voter_small):
        shingler = Shingler(VOTER_ATTRS, q=2)
        hasher = MinHasher(12, seed=9)
        records = list(voter_small)
        expected = hasher.signature_matrix(shingler.shingle_corpus(records))

        vocab = ShingleVocabulary()
        produced = []
        for lo in range(0, len(records), 150):
            corpus = shingler.shingle_corpus(
                records[lo : lo + 150], vocabulary=vocab
            )
            produced.append(hasher.signature_matrix(corpus))
        assert np.array_equal(np.concatenate(produced), expected)

    def test_tiny_slabs_trigger_vocabulary_compaction(self, voter_small):
        # Slabs of 2 records reference a sliver of the cumulative
        # vocabulary, so signature_matrix takes the compaction path
        # (vocab_size > slab token stream) — results must not change.
        shingler = Shingler(VOTER_ATTRS, q=2)
        hasher = MinHasher(10, seed=4)
        records = list(voter_small)[:60]
        expected = hasher.signature_matrix(shingler.shingle_corpus(records))

        vocab = ShingleVocabulary()
        produced = []
        for lo in range(0, len(records), 2):
            corpus = shingler.shingle_corpus(
                records[lo : lo + 2], vocabulary=vocab
            )
            if lo > 20:
                assert corpus.vocab_size > corpus.num_tokens + 1
            produced.append(hasher.signature_matrix(corpus, workers=2))
        assert np.array_equal(np.concatenate(produced), expected)

    def test_vocabulary_rejects_other_config(self):
        vocab = ShingleVocabulary()
        Shingler(("title",), q=2).shingle_corpus(
            title_dataset(["ab"]), vocabulary=vocab
        )
        with pytest.raises(ConfigurationError):
            Shingler(("title",), q=3).shingle_corpus(
                title_dataset(["cd"]), vocabulary=vocab
            )

    def test_memo_cache_cap_does_not_change_output(self):
        titles = [f"rec {i % 7} value {i % 3}" for i in range(40)]
        shingler = Shingler(("title",), q=2)
        reference = shingler.shingle_corpus(title_dataset(titles))
        tiny_cache = ShingleVocabulary(max_cached_values=2)
        capped = shingler.shingle_corpus(
            title_dataset(titles), vocabulary=tiny_cache
        )
        assert np.array_equal(capped.token_vocab, reference.token_vocab)
        assert np.array_equal(capped.indptr, reference.indptr)
        assert len(tiny_cache.value_tokens) <= 2
        assert len(tiny_cache.row_tokens) <= 2


class TestIndexSlabMerging:
    def _signatures(self, dataset, k=3, l=4):
        shingler = Shingler(VOTER_ATTRS, q=2)
        hasher = MinHasher(k * l, seed=2)
        corpus = shingler.shingle_corpus(dataset)
        return corpus.record_ids, hasher.signature_matrix(corpus), k, l

    def test_split_add_many_equals_single_call(self, voter_small):
        record_ids, signatures, k, l = self._signatures(voter_small)
        keys = split_bands_matrix(signatures, k, l)

        single = BandedLSHIndex(l)
        single.add_many(record_ids, keys)

        split = BandedLSHIndex(l)
        for lo in (0, 50, 51, 400):
            hi = {0: 50, 50: 51, 51: 400, 400: len(record_ids)}[lo]
            split.add_many(record_ids[lo:hi], keys[lo:hi])

        assert split.blocks() == single.blocks()
        assert split.bucket_sizes() == single.bucket_sizes()

    @pytest.mark.parametrize("w,mode", [("all", "or"), (2, "and"), (3, "or")])
    def test_split_gated_add_many_equals_single_call(self, voter_small, w, mode):
        record_ids, signatures, k, l = self._signatures(voter_small)
        keys = split_bands_matrix(signatures, k, l)
        encoder = SemhashEncoder(VoterSemanticFunction(), voter_small)
        semhash = encoder.signature_matrix(voter_small)
        gates = WWaySemanticHashFamily(
            num_bits=encoder.num_bits, w=w, mode=mode, num_tables=l, seed=1
        )

        single = BandedLSHIndex(l)
        single.add_many(
            record_ids, keys,
            gate_entries=[
                gates.gate_entries(t, semhash) for t in range(l)
            ],
        )

        split = BandedLSHIndex(l)
        for lo, hi in ((0, 123), (123, 124), (124, len(record_ids))):
            split.add_many(
                record_ids[lo:hi], keys[lo:hi],
                gate_entries=[
                    gates.gate_entries(t, semhash[lo:hi]) for t in range(l)
                ],
            )

        assert split.blocks() == single.blocks()
        assert split.bucket_sizes() == single.bucket_sizes()

    def test_add_many_after_blocks_extends_index(self, voter_small):
        record_ids, signatures, k, l = self._signatures(voter_small)
        keys = split_bands_matrix(signatures, k, l)
        index = BandedLSHIndex(l)
        index.add_many(record_ids[:200], keys[:200])
        first = index.blocks()
        index.add_many(record_ids[200:], keys[200:])
        merged = index.blocks()
        single = BandedLSHIndex(l)
        single.add_many(record_ids, keys)
        assert merged == single.blocks()
        assert first != merged


class TestStreamedBlocking:
    def _slabs(self, dataset, size):
        records = list(dataset)
        return [records[i : i + size] for i in range(0, len(records), size)]

    def test_block_stream_matches_block(self, voter_small):
        blocker = LSHBlocker(VOTER_ATTRS, q=2, k=4, l=6, seed=11)
        reference = blocker.block(voter_small)
        streamed = blocker.block_stream(self._slabs(voter_small, 111))
        assert streamed.blocks == reference.blocks
        assert streamed.metadata["engine"] == "streaming"
        assert streamed.metadata["num_slabs"] == 8

    def test_block_stream_with_memmap_spill(self, tmp_path, voter_small):
        blocker = LSHBlocker(VOTER_ATTRS, q=2, k=4, l=6, seed=11, workers=2)
        reference = blocker.block(voter_small)
        signatures = open_signature_memmap(
            tmp_path / "stream.npy", len(voter_small), 4 * 6
        )
        streamed = blocker.block_stream(
            self._slabs(voter_small, 97), signatures_out=signatures
        )
        assert streamed.blocks == reference.blocks
        assert streamed.metadata["spilled"] is True
        # The spilled matrix equals the in-memory one, row for row.
        corpus = blocker.shingler.shingle_corpus(voter_small)
        assert np.array_equal(
            np.asarray(signatures), blocker.hasher.signature_matrix(corpus)
        )

    def test_block_stream_overflow_rejected(self, tmp_path, voter_small):
        blocker = LSHBlocker(VOTER_ATTRS, q=2, k=2, l=2, seed=0)
        too_small = open_signature_memmap(tmp_path / "small.npy", 10, 4)
        with pytest.raises(ConfigurationError):
            blocker.block_stream(
                self._slabs(voter_small, 100), signatures_out=too_small
            )

    def test_workers_blocks_identical(self, voter_small):
        serial = LSHBlocker(VOTER_ATTRS, q=2, k=4, l=6, seed=3).block(voter_small)
        threaded = LSHBlocker(
            VOTER_ATTRS, q=2, k=4, l=6, seed=3, workers=4
        ).block(voter_small)
        assert threaded.blocks == serial.blocks
        assert threaded.metadata["workers"] == 4

    def test_salsh_workers_blocks_identical(self, voter_small):
        make = lambda **kw: SALSHBlocker(
            VOTER_ATTRS, q=2, k=4, l=6, seed=3,
            semantic_function=VoterSemanticFunction(), w=2, mode="or", **kw,
        )
        assert (
            make(workers=3).block(voter_small).blocks
            == make().block(voter_small).blocks
        )


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(2)
        cache["a"] = 1
        cache["b"] = 2
        assert cache.get("a") == 1  # refresh 'a'; 'b' is now LRU
        cache["c"] = 3
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert len(cache) == 2

    def test_overwrite_refreshes(self):
        cache = LRUCache(2)
        cache["a"] = 1
        cache["b"] = 2
        cache["a"] = 10  # refresh by reassignment
        cache["c"] = 3
        assert "b" not in cache and cache["a"] == 10

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_get_default_and_clear(self):
        cache = LRUCache(1)
        assert cache.get("missing", 42) == 42
        cache["x"] = 1
        cache.clear()
        assert len(cache) == 0
