"""Smoke tests keeping the example scripts runnable.

Each example is executed as a subprocess (as a user would run it); the
slow corpus-scale walkthroughs are exercised with reduced inputs or
skipped unless REPRO_RUN_SLOW_EXAMPLES is set.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
        check=False,
    )


def test_quickstart_runs_and_removes_r1_r4():
    result = run_example("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "SA-LSH removed" in result.stdout
    assert "B3" in result.stdout


def test_custom_taxonomy_runs():
    result = run_example("custom_taxonomy.py")
    assert result.returncode == 0, result.stderr
    assert "Product catalogue" in result.stdout


def test_compare_baselines_small():
    result = run_example("compare_baselines.py", "--records", "400")
    assert result.returncode == 0, result.stderr
    assert "SA-LSH" in result.stdout
    assert "TBlo" in result.stdout


@pytest.mark.skipif(
    not os.environ.get("REPRO_RUN_SLOW_EXAMPLES"),
    reason="slow example; set REPRO_RUN_SLOW_EXAMPLES=1 to run",
)
def test_publications_dedup_full():
    result = run_example("publications_dedup.py")
    assert result.returncode == 0, result.stderr
    assert "SA-LSH" in result.stdout


@pytest.mark.skipif(
    not os.environ.get("REPRO_RUN_SLOW_EXAMPLES"),
    reason="slow example; set REPRO_RUN_SLOW_EXAMPLES=1 to run",
)
def test_voter_dedup_full():
    result = run_example("voter_dedup.py")
    assert result.returncode == 0, result.stderr
    assert "w-way OR" in result.stdout


def test_end_to_end_resolution_runs():
    result = run_example("end_to_end_resolution.py")
    assert result.returncode == 0, result.stderr
    assert "resolution quality" in result.stdout


def test_streaming_sharded_runs():
    # Reduced corpus; the script asserts streamed-vs-batch and
    # sharded-vs-serial block identity internally.
    result = run_example("streaming_sharded.py", "800")
    assert result.returncode == 0, result.stderr
    assert "identical to batch blocks" in result.stdout
