"""Smoke suite: every one of the 163 grid settings must run correctly.

Each configured blocker is exercised on a small corpus and its output
checked against the structural invariants every blocking must satisfy:
only known record ids, no singleton blocks, candidate pairs within Ω,
determinism across repeated runs. This catches parameter combinations
that individually-chosen unit tests would miss.
"""

from __future__ import annotations

import pytest

from repro.baselines import TECHNIQUE_ORDER, iter_parameter_grid
from repro.datasets import NCVoterLikeGenerator
from repro.evaluation import evaluate_blocks

ATTRS = ("first_name", "last_name")


@pytest.fixture(scope="module")
def smoke_dataset():
    return NCVoterLikeGenerator(num_records=120, seed=17).generate()


def _structurally_valid(result, dataset):
    ids = set(dataset.record_ids)
    for block in result.blocks:
        assert len(block) >= 2
        for record_id in block:
            assert record_id in ids
    metrics = evaluate_blocks(result, dataset)
    assert 0.0 <= metrics.pc <= 1.0
    assert 0.0 <= metrics.pq <= 1.0
    assert 0.0 <= metrics.rr <= 1.0
    return metrics


@pytest.mark.parametrize("technique", TECHNIQUE_ORDER)
def test_every_grid_setting_runs(technique, smoke_dataset):
    for blocker in iter_parameter_grid(technique, ATTRS):
        result = blocker.block(smoke_dataset)
        _structurally_valid(result, smoke_dataset)


@pytest.mark.parametrize("technique", ["TBlo", "SorA", "QGr", "SuA", "CaTh"])
def test_grid_settings_deterministic(technique, smoke_dataset):
    for blocker in iter_parameter_grid(technique, ATTRS):
        first = blocker.block(smoke_dataset).distinct_pairs
        second = blocker.block(smoke_dataset).distinct_pairs
        assert first == second, blocker.describe()


def test_window_growth_monotone_for_sorted_neighbourhood(smoke_dataset):
    """Wider windows can only add candidate pairs (SorA invariant)."""
    from repro.baselines import ArraySortedNeighbourhood

    previous = None
    for window in (2, 3, 5, 7, 10):
        pairs = (
            ArraySortedNeighbourhood(ATTRS, window=window)
            .block(smoke_dataset)
            .distinct_pairs
        )
        if previous is not None:
            assert previous <= pairs, window
        previous = pairs


def test_suffix_min_length_monotone(smoke_dataset):
    """Shorter minimum suffixes index more variants, never fewer."""
    from repro.baselines import SuffixArrayBlocker

    short = SuffixArrayBlocker(ATTRS, min_length=3, max_block_size=1000)
    long = SuffixArrayBlocker(ATTRS, min_length=5, max_block_size=1000)
    assert (
        long.block(smoke_dataset).distinct_pairs
        <= short.block(smoke_dataset).distinct_pairs
    )


def test_qgram_threshold_monotone(smoke_dataset):
    """Lower thresholds allow more deletions, never fewer pairs."""
    from repro.baselines import QGramBlocker

    strict = QGramBlocker(ATTRS, q=2, threshold=0.9)
    loose = QGramBlocker(ATTRS, q=2, threshold=0.8)
    assert (
        strict.block(smoke_dataset).distinct_pairs
        <= loose.block(smoke_dataset).distinct_pairs
    )
