"""Tests for PC/PQ/RR/FM metrics, the runner and report tables."""

import pytest

from repro.core.base import Blocker, BlockingResult
from repro.errors import EvaluationError
from repro.evaluation import (
    best_by,
    evaluate_blocks,
    format_table,
    run_blocking,
)
from repro.evaluation.runner import run_all
from repro.records import Dataset, Record


def dataset():
    """4 records, entities: {a, b} match, {c, d} match."""
    return Dataset(
        [
            Record("a", {"x": "1"}, entity_id="e1"),
            Record("b", {"x": "2"}, entity_id="e1"),
            Record("c", {"x": "3"}, entity_id="e2"),
            Record("d", {"x": "4"}, entity_id="e2"),
        ]
    )


class TestEvaluateBlocks:
    def test_perfect_blocking(self):
        result = BlockingResult("perfect", (("a", "b"), ("c", "d")))
        metrics = evaluate_blocks(result, dataset())
        assert metrics.pc == 1.0
        assert metrics.pq == 1.0
        assert metrics.fm == 1.0
        # 2 of 6 total pairs -> RR = 2/3.
        assert metrics.rr == pytest.approx(2 / 3)

    def test_partial_recall(self):
        result = BlockingResult("half", (("a", "b"),))
        metrics = evaluate_blocks(result, dataset())
        assert metrics.pc == 0.5
        assert metrics.pq == 1.0
        assert metrics.fm == pytest.approx(2 / 3)

    def test_impure_block(self):
        result = BlockingResult("one-big", (("a", "b", "c", "d"),))
        metrics = evaluate_blocks(result, dataset())
        assert metrics.pc == 1.0
        assert metrics.pq == pytest.approx(2 / 6)
        assert metrics.rr == 0.0

    def test_pq_star_counts_redundancy(self):
        # The same true pair in two blocks: PQ uses distinct pairs,
        # PQ* the multiset.
        result = BlockingResult("dup", (("a", "b"), ("a", "b")))
        metrics = evaluate_blocks(result, dataset())
        assert metrics.pq == 1.0
        assert metrics.pq_star == 0.5
        assert metrics.fm_star < metrics.fm

    def test_empty_blocking(self):
        metrics = evaluate_blocks(BlockingResult("none", ()), dataset())
        assert metrics.pc == 0.0
        assert metrics.pq == 0.0
        assert metrics.fm == 0.0
        assert metrics.rr == 1.0

    def test_unknown_record_rejected(self):
        result = BlockingResult("bad", (("a", "zzz"),))
        with pytest.raises(EvaluationError):
            evaluate_blocks(result, dataset())

    def test_counts_exposed(self):
        result = BlockingResult("x", (("a", "b", "c"),))
        metrics = evaluate_blocks(result, dataset())
        assert metrics.num_blocks == 1
        assert metrics.num_distinct_pairs == 3
        assert metrics.num_multiset_pairs == 3
        assert metrics.num_true_positives == 1
        assert metrics.max_block_size == 3

    def test_str_is_informative(self):
        metrics = evaluate_blocks(BlockingResult("x", (("a", "b"),)), dataset())
        text = str(metrics)
        assert "PC=" in text and "FM=" in text


class _FixedBlocker(Blocker):
    def __init__(self, name, blocks):
        self.name = name
        self._blocks = blocks

    def block(self, ds):
        return BlockingResult(self.name, self._blocks)


class TestRunner:
    def test_run_blocking_times_and_evaluates(self):
        result = run_blocking(_FixedBlocker("f", (("a", "b"),)), dataset())
        assert result.seconds >= 0.0
        assert result.metrics.pc == 0.5
        assert result.blocker_name == "f"

    def test_run_all_order(self):
        results = run_all(
            [_FixedBlocker("1", ()), _FixedBlocker("2", (("a", "b"),))], dataset()
        )
        assert [r.blocker_name for r in results] == ["1", "2"]

    def test_best_by_fm(self):
        results = run_all(
            [
                _FixedBlocker("low", (("a", "c"),)),
                _FixedBlocker("high", (("a", "b"), ("c", "d"))),
            ],
            dataset(),
        )
        assert best_by(results, "fm").blocker_name == "high"

    def test_best_by_unknown_measure(self):
        results = run_all([_FixedBlocker("x", ())], dataset())
        with pytest.raises(EvaluationError):
            best_by(results, "nope")

    def test_best_by_empty(self):
        with pytest.raises(EvaluationError):
            best_by([], "fm")

    def test_sf_seconds_zero_for_plain_blockers(self):
        result = run_blocking(_FixedBlocker("f", ()), dataset())
        assert result.sf_seconds == 0.0


class TestFormatTable:
    def test_alignment_and_floats(self):
        table = format_table(["name", "pc"], [["LSH", 0.5]], float_digits=2)
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "0.50" in lines[2]

    def test_title_included(self):
        table = format_table(["a"], [[1]], title="Table 1")
        assert table.splitlines()[0] == "Table 1"

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table
