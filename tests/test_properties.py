"""Property-based tests (hypothesis) for the core invariants.

The heavyweight ones validate the identities DESIGN.md relies on:

* Eq. 5 record similarity == Jaccard of leaf expansions, on *random*
  taxonomy trees and random specificity-compliant interpretations —
  which makes Proposition 4.3 exact.
* The w-way gate bucket construction == the pairwise predicate.
* Minhash signature agreement is an unbiased estimator of Jaccard.
* Metric bounds and symmetries for every registered string comparator.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tuning import determine_kl, required_tables
from repro.lsh.collision import (
    banded_collision_probability,
    salsh_collision_probability,
    wway_collision_probability,
)
from repro.minhash import MinHasher
from repro.semantic import (
    WWaySemanticHashFamily,
    enforce_specificity,
    leaf_expansion_similarity,
    record_semantic_similarity,
)
from repro.text import (
    edit_distance,
    edit_similarity,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    lcs_similarity,
    qgrams,
)
from repro.taxonomy import TaxonomyTree
from repro.utils.hashing import MERSENNE_PRIME_61

# -- strategies ------------------------------------------------------------------


@st.composite
def random_tree(draw) -> TaxonomyTree:
    """A random taxonomy tree with 2-25 nodes."""
    num_nodes = draw(st.integers(min_value=2, max_value=25))
    tree = TaxonomyTree("random")
    tree.add_root("n0")
    for index in range(1, num_nodes):
        parent = draw(st.integers(min_value=0, max_value=index - 1))
        tree.add_child(f"n{parent}", f"n{index}")
    return tree


@st.composite
def tree_with_two_interpretations(draw):
    """A random tree plus two specificity-compliant concept sets."""
    tree = draw(random_tree())
    concepts = tree.concept_ids
    zeta1 = draw(st.sets(st.sampled_from(concepts), min_size=1, max_size=4))
    zeta2 = draw(st.sets(st.sampled_from(concepts), min_size=1, max_size=4))
    return tree, enforce_specificity(tree, zeta1), enforce_specificity(tree, zeta2)


short_text = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122), max_size=12
)


# -- Eq. 5 equivalence (Prop 4.3 exactness) ---------------------------------------


@settings(max_examples=200, deadline=None)
@given(tree_with_two_interpretations())
def test_eq5_equals_leaf_expansion_jaccard(data):
    tree, zeta1, zeta2 = data
    literal = record_semantic_similarity(tree, zeta1, zeta2)
    fast = leaf_expansion_similarity(tree, zeta1, zeta2)
    assert abs(literal - fast) < 1e-9


@settings(max_examples=100, deadline=None)
@given(tree_with_two_interpretations())
def test_semantic_similarity_symmetric_and_bounded(data):
    tree, zeta1, zeta2 = data
    s12 = record_semantic_similarity(tree, zeta1, zeta2)
    s21 = record_semantic_similarity(tree, zeta2, zeta1)
    assert abs(s12 - s21) < 1e-9
    assert 0.0 <= s12 <= 1.0 + 1e-9


@settings(max_examples=100, deadline=None)
@given(tree_with_two_interpretations())
def test_semantic_self_similarity_is_one(data):
    tree, zeta1, _ = data
    assert abs(record_semantic_similarity(tree, zeta1, zeta1) - 1.0) < 1e-9


@settings(max_examples=100, deadline=None)
@given(random_tree())
def test_proposition_4_1_random_trees(tree):
    """ζ(r1) = {c}, ζ(r2) = child(c) -> similarity 1, on any tree."""
    for concept in tree.concept_ids:
        children = tree.children(concept)
        if children:
            value = record_semantic_similarity(tree, {concept}, set(children))
            assert abs(value - 1.0) < 1e-9


@settings(max_examples=100, deadline=None)
@given(random_tree())
def test_specificity_output_is_antichain(tree):
    concepts = set(tree.concept_ids)
    reduced = enforce_specificity(tree, concepts)
    for c1 in reduced:
        for c2 in reduced:
            if c1 != c2:
                assert not tree.subsumes(c1, c2)


# -- w-way gates ---------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=8),
    st.sampled_from(["and", "or"]),
    st.integers(min_value=0, max_value=2**8 - 1),
    st.integers(min_value=0, max_value=2**8 - 1),
    st.integers(min_value=0, max_value=1000),
)
def test_gate_matches_pairwise_predicate(num_extra, w, mode, bits1, bits2, seed):
    num_bits = 8
    w = min(w, num_bits)
    family = WWaySemanticHashFamily(num_bits, w, mode, num_tables=3, seed=seed)
    sig1 = np.array([(bits1 >> b) & 1 for b in range(num_bits)], dtype=np.uint8)
    sig2 = np.array([(bits2 >> b) & 1 for b in range(num_bits)], dtype=np.uint8)
    for table in range(3):
        bucket = bool(
            set(family.gate_suffixes(table, sig1))
            & set(family.gate_suffixes(table, sig2))
        )
        assert bucket == family.pair_collides(table, sig1, sig2)


# -- minhash -------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    st.sets(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=30),
    st.sets(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=30),
    st.integers(min_value=0, max_value=100),
)
def test_minhash_estimates_jaccard(ids1, ids2, seed):
    hasher = MinHasher(256, seed=seed)
    a1 = np.array(sorted(ids1), dtype=np.uint64) % MERSENNE_PRIME_61
    a2 = np.array(sorted(ids2), dtype=np.uint64) % MERSENNE_PRIME_61
    estimate = hasher.estimate_jaccard(hasher.signature(a1), hasher.signature(a2))
    true = jaccard_similarity(set(a1.tolist()), set(a2.tolist()))
    # 256 hashes: standard error <= 0.5/sqrt(256) ~ 0.031; allow 5 sigma.
    assert abs(estimate - true) <= 0.16


@settings(max_examples=50, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=10_000), max_size=30))
def test_minhash_identical_sets_identical_signatures(ids):
    hasher = MinHasher(64, seed=7)
    array = np.array(sorted(ids), dtype=np.uint64) % MERSENNE_PRIME_61
    assert np.array_equal(hasher.signature(array), hasher.signature(array.copy()))


# -- string comparators ----------------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(short_text, short_text)
def test_all_comparators_bounded_and_symmetric(s1, s2):
    for fn in (jaro_similarity, jaro_winkler_similarity, edit_similarity, lcs_similarity):
        v12, v21 = fn(s1, s2), fn(s2, s1)
        assert 0.0 <= v12 <= 1.0
        if fn is not lcs_similarity:  # LCS extraction order can differ
            assert abs(v12 - v21) < 1e-9


@settings(max_examples=150, deadline=None)
@given(short_text)
def test_comparators_identity(s):
    for fn in (jaro_similarity, jaro_winkler_similarity, edit_similarity, lcs_similarity):
        if s == "":
            continue
        assert fn(s, s) == 1.0


@settings(max_examples=150, deadline=None)
@given(short_text, short_text, short_text)
def test_edit_distance_triangle_inequality(s1, s2, s3):
    assert edit_distance(s1, s3) <= edit_distance(s1, s2) + edit_distance(s2, s3)


@settings(max_examples=100, deadline=None)
@given(short_text, st.integers(min_value=1, max_value=4))
def test_qgrams_reconstructable(s, q):
    grams = qgrams(s, q)
    if len(s) >= q:
        assert len(grams) == len(s) - q + 1
        # Overlapping grams re-assemble to the original string.
        rebuilt = grams[0] + "".join(g[-1] for g in grams[1:])
        assert rebuilt == s


# -- collision math ----------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=1, max_value=100),
)
def test_banded_probability_in_unit_interval(s, k, l):
    assert 0.0 <= banded_collision_probability(s, k, l) <= 1.0


@settings(max_examples=100, deadline=None)
@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=50),
    st.integers(min_value=1, max_value=8),
    st.sampled_from(["and", "or"]),
)
def test_salsh_probability_dominated_by_banded(s, s_prime, k, l, w, mode):
    combined = salsh_collision_probability(s, s_prime, k, l, w, mode)
    assert 0.0 <= combined <= banded_collision_probability(s, k, l) + 1e-12


@settings(max_examples=100, deadline=None)
@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=1, max_value=15),
)
def test_wway_or_dominates_and(s_prime, w):
    assert (
        wway_collision_probability(s_prime, w, "or")
        >= wway_collision_probability(s_prime, w, "and") - 1e-12
    )


@settings(max_examples=50, deadline=None)
@given(
    st.floats(min_value=0.05, max_value=0.95),
    st.floats(min_value=0.05, max_value=0.9),
)
def test_required_tables_achieves_target(s, p):
    l = required_tables(s, 3, p)
    assert banded_collision_probability(s, 3, l) >= p


@settings(max_examples=30, deadline=None)
@given(
    st.floats(min_value=0.3, max_value=0.9),
    st.floats(min_value=0.01, max_value=0.2),
)
def test_determine_kl_feasible_split(sh, sl_fraction):
    """Any (sh, sl) with a healthy gap admits a feasible (k, l)."""
    sl = sh * sl_fraction
    params = determine_kl(sh, sl, 0.5, 0.1)
    assert banded_collision_probability(sh, params.k, params.l) >= 0.5
    assert banded_collision_probability(sl, params.k, params.l) <= 0.1
