"""Tests for semantic functions: specificity, patterns (Table 1), voter."""

import pytest

from repro.errors import SemanticFunctionError
from repro.records import Record
from repro.semantic import (
    CallableSemanticFunction,
    MissingValuePattern,
    PatternSemanticFunction,
    VoterSemanticFunction,
    cora_patterns,
    enforce_specificity,
)


def pub(rid="p", journal="", booktitle="", institution=""):
    return Record(
        rid,
        {"journal": journal, "booktitle": booktitle, "institution": institution},
    )


def voter(rid="v", race="w", gender="m"):
    return Record(rid, {"race": race, "gender": gender})


class TestSpecificity:
    def test_removes_ancestors(self, tbib):
        assert enforce_specificity(tbib, {"c1", "c3"}) == frozenset({"c3"})

    def test_keeps_incomparable(self, tbib):
        assert enforce_specificity(tbib, {"c3", "c7"}) == frozenset({"c3", "c7"})

    def test_root_dropped_when_anything_else_present(self, tbib):
        assert enforce_specificity(tbib, {"c0", "c9"}) == frozenset({"c9"})

    def test_single_concept_kept(self, tbib):
        assert enforce_specificity(tbib, {"c0"}) == frozenset({"c0"})

    def test_unknown_concept_raises(self, tbib):
        with pytest.raises(SemanticFunctionError):
            enforce_specificity(tbib, {"ghost"})

    def test_empty_stays_empty(self, tbib):
        assert enforce_specificity(tbib, set()) == frozenset()


class TestCallableSemanticFunction:
    def test_wraps_and_enforces_specificity(self, tbib):
        fn = CallableSemanticFunction(tbib, lambda r: ("c1", "c3"))
        assert fn.interpret(pub()) == frozenset({"c3"})

    def test_isolation_only_sees_one_record(self, tbib):
        """The interface enforces Def 4.2(b): single-record input."""
        seen = []
        fn = CallableSemanticFunction(tbib, lambda r: (seen.append(r.record_id), ("c3",))[1])
        fn.interpret(pub("only"))
        assert seen == ["only"]


class TestMissingValuePattern:
    def test_matches_present_and_absent(self):
        pattern = MissingValuePattern(("a",), ("b",), ("c3",))
        assert pattern.matches(Record("r", {"a": "x", "b": ""}))
        assert not pattern.matches(Record("r", {"a": "x", "b": "y"}))
        assert not pattern.matches(Record("r", {"a": "", "b": ""}))

    def test_unmentioned_attributes_unconstrained(self):
        pattern = MissingValuePattern(("a",), (), ("c3",))
        assert pattern.matches(Record("r", {"a": "x", "z": "anything"}))


class TestCoraPatterns:
    """The eight Table 1 rows, in order."""

    TABLE_1 = [
        # (journal, booktitle, institution) -> expected concepts
        (("j", "b", "i"), {"c3", "c4", "c6"}),
        (("j", "b", ""), {"c3", "c4"}),
        (("j", "", "i"), {"c3", "c6"}),
        (("j", "", ""), {"c3"}),
        (("", "b", "i"), {"c4", "c7", "c8"}),
        (("", "b", ""), {"c4"}),
        (("", "", "i"), {"c7", "c8"}),
        (("", "", ""), {"c1"}),
    ]

    @pytest.mark.parametrize("values,expected", TABLE_1)
    def test_table1_row(self, tbib, values, expected):
        fn = PatternSemanticFunction(tbib, cora_patterns())
        record = pub("p", *values)
        assert fn.interpret(record) == frozenset(expected)

    def test_patterns_are_complete(self, tbib):
        """Every present/absent combination matches some pattern."""
        fn = PatternSemanticFunction(tbib, cora_patterns())
        for mask in range(8):
            record = pub(
                "p",
                "j" if mask & 4 else "",
                "b" if mask & 2 else "",
                "i" if mask & 1 else "",
            )
            assert fn.matching_pattern(record) is not None, mask

    def test_no_match_without_fallback_raises(self, tbib):
        only_first = PatternSemanticFunction(tbib, cora_patterns()[:1])
        with pytest.raises(SemanticFunctionError):
            only_first.interpret(pub("p"))

    def test_fallback_used(self, tbib):
        fn = PatternSemanticFunction(
            tbib, cora_patterns()[:1], fallback=("c0",)
        )
        assert fn.interpret(pub("p")) == frozenset({"c0"})

    def test_unknown_concept_in_pattern_rejected(self, tbib):
        bad = MissingValuePattern((), (), ("ghost",))
        with pytest.raises(SemanticFunctionError):
            PatternSemanticFunction(tbib, [bad])

    def test_empty_pattern_list_rejected(self, tbib):
        with pytest.raises(SemanticFunctionError):
            PatternSemanticFunction(tbib, [])

    def test_interpretations_satisfy_specificity(self, tbib):
        fn = PatternSemanticFunction(tbib, cora_patterns())
        for values, _ in self.TABLE_1:
            zeta = fn.interpret(pub("p", *values))
            for c1 in zeta:
                for c2 in zeta:
                    if c1 != c2:
                        assert not tbib.subsumes(c1, c2)


class TestVoterSemanticFunction:
    def test_both_known_single_leaf(self):
        fn = VoterSemanticFunction()
        assert fn.interpret(voter(race="w", gender="m")) == frozenset({"w_m"})

    def test_unknown_gender_race_node(self):
        fn = VoterSemanticFunction()
        assert fn.interpret(voter(race="b", gender="u")) == frozenset({"race_b"})

    def test_unknown_race_gender_slice(self):
        fn = VoterSemanticFunction()
        zeta = fn.interpret(voter(race="u", gender="f"))
        assert zeta == frozenset({"w_f", "b_f", "a_f", "i_f", "m_f", "o_f"})

    def test_all_unknown_root(self):
        fn = VoterSemanticFunction()
        assert fn.interpret(voter(race="u", gender="u")) == frozenset({"v0"})

    def test_missing_attributes_treated_as_unknown(self):
        fn = VoterSemanticFunction()
        assert fn.interpret(Record("v", {})) == frozenset({"v0"})

    def test_case_and_whitespace_tolerated(self):
        fn = VoterSemanticFunction()
        assert fn.interpret(
            Record("v", {"race": " W ", "gender": "M"})
        ) == frozenset({"w_m"})

    def test_custom_attribute_names(self):
        fn = VoterSemanticFunction(
            race_attribute="ethnicity", gender_attribute="sex"
        )
        record = Record("v", {"ethnicity": "a", "sex": "f"})
        assert fn.interpret(record) == frozenset({"a_f"})
